package automaton

import (
	"sort"

	"pathalgebra/internal/graph"
)

// CompiledNFA binds an NFA to one graph's edge-label symbol table: every
// Glushkov position's label is interned to a graph.SymbolID and the
// transition relation is re-indexed as a dense per-(state, symbol) table.
// The product search then never hashes or compares a label string — a
// transition lookup is one slice index, and the set of symbols a state can
// read at all is precomputed so the inner loop touches exactly the
// matching adjacency runs.
//
// Any-label positions are folded in without blowing up on wide alphabets:
// a state with an any transition shares one sorted target slice across
// every symbol lacking labelled targets (slice headers only, no per-symbol
// allocation), and is flagged AllSymbols so the evaluator iterates the
// node's adjacency runs directly instead of enumerating the alphabet.
//
// Compilation is O(states × symbols) slice-header writes and is done once
// per evaluation; the result is immutable and safe for concurrent readers
// (the parallel evaluator shares one CompiledNFA across all workers).
type CompiledNFA struct {
	nfa     *NFA
	numSyms int
	// trans[int(s)*numSyms+int(sym)] lists the states reachable from s by
	// reading an edge with the given symbol, ascending and duplicate-free.
	trans [][]StateID
	// stateSyms[s] lists the symbols with at least one transition from s,
	// ascending — the iteration set of the search's inner loop. It is nil
	// for allSyms states, which iterate adjacency runs instead.
	stateSyms [][]graph.SymbolID
	// allSyms[s] reports that s reads every symbol (it has an any-label
	// transition), so symbol-set iteration must not be used for it.
	allSyms []bool
}

// Compile builds the symbol-indexed transition table of n over g's symbol
// table. Expression labels that no edge of g carries compile to nothing:
// no edge can ever read them, exactly as with string comparison.
func (n *NFA) Compile(g *graph.Graph) *CompiledNFA {
	numSyms := g.NumSymbols()
	states := n.NumStates()
	c := &CompiledNFA{
		nfa:       n,
		numSyms:   numSyms,
		trans:     make([][]StateID, states*numSyms),
		stateSyms: make([][]graph.SymbolID, states),
		allSyms:   make([]bool, states),
	}
	for s := 0; s < states; s++ {
		var anyQ []StateID
		for _, q := range n.next[s] {
			p := n.positions[q-1]
			if p.any {
				anyQ = appendState(anyQ, q)
			} else if sym := g.SymbolOf(p.label); sym != graph.NoSymbol {
				i := int(s)*numSyms + int(sym)
				c.trans[i] = appendState(c.trans[i], q)
			}
		}
		base := s * numSyms
		if len(anyQ) > 0 && numSyms > 0 {
			c.allSyms[s] = true
			sortStates(anyQ)
			for sym := 0; sym < numSyms; sym++ {
				if ts := c.trans[base+sym]; len(ts) > 0 {
					sortStates(ts)
					c.trans[base+sym] = mergeStates(ts, anyQ)
				} else {
					c.trans[base+sym] = anyQ // shared: header copy only
				}
			}
			continue
		}
		for sym := 0; sym < numSyms; sym++ {
			if ts := c.trans[base+sym]; len(ts) > 0 {
				sortStates(ts)
				c.stateSyms[s] = append(c.stateSyms[s], graph.SymbolID(sym))
			}
		}
	}
	return c
}

// appendState appends q unless present.
func appendState(ts []StateID, q StateID) []StateID {
	for _, t := range ts {
		if t == q {
			return ts
		}
	}
	return append(ts, q)
}

func sortStates(ts []StateID) {
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
}

// mergeStates returns the sorted, duplicate-free union of two sorted
// duplicate-free lists.
func mergeStates(a, b []StateID) []StateID {
	out := make([]StateID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// NFA returns the automaton this table was compiled from.
func (c *CompiledNFA) NFA() *NFA { return c.nfa }

// Trans returns the states reachable from s by reading symbol sym,
// ascending. The slice is shared; do not modify.
func (c *CompiledNFA) Trans(s StateID, sym graph.SymbolID) []StateID {
	return c.trans[int(s)*c.numSyms+int(sym)]
}

// StateSymbols returns the symbols readable from s, ascending; nil for
// AllSymbols states. The slice is shared; do not modify.
func (c *CompiledNFA) StateSymbols(s StateID) []graph.SymbolID {
	return c.stateSyms[s]
}

// AllSymbols reports whether s reads every symbol of the graph's alphabet
// (the state has an any-label transition).
func (c *CompiledNFA) AllSymbols(s StateID) bool { return c.allSyms[s] }
