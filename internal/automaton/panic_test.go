package automaton_test

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"pathalgebra/internal/automaton"
	"pathalgebra/internal/core"
	"pathalgebra/internal/fault"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/rpq"
)

// TestEvalPanicIsolation: a panic inside one evaluation worker surfaces
// as a typed core.ErrInternal from EvalParallel — it does not kill the
// process, and it does not leak the worker pool's goroutines. A
// subsequent (un-faulted) evaluation over the same inputs is
// byte-identical to a never-faulted run: nothing shared was poisoned.
func TestEvalPanicIsolation(t *testing.T) {
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 16, KnowsPerPerson: 2, CycleFraction: 0.3, Seed: 7,
	})
	nfa := automaton.Build(rpq.MustParse(":Knows+"))
	lim := core.Limits{MaxLen: 4}

	want, err := automaton.Eval(g, nfa, core.Trail, lim)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		before := runtime.NumGoroutine()
		restore := fault.Arm(fault.Schedule{Rules: []fault.Rule{
			{Site: "automaton.worker", Mode: fault.ModePanic, Nth: 2},
		}})
		_, err := automaton.EvalParallel(g, nfa, core.Trail, lim, workers)
		restore()
		if !errors.Is(err, core.ErrInternal) {
			t.Fatalf("workers=%d: got %v, want core.ErrInternal", workers, err)
		}
		// PanicError.Unwrap exposes error panic values: the injected fault
		// stays errors.Is-able through the recovery.
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("workers=%d: %v does not unwrap to the injected fault", workers, err)
		}
		var pe *core.PanicError
		if !errors.As(err, &pe) || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: %v carries no stack", workers, err)
		}

		// The pool drained: no worker goroutine survives the failure.
		waitGoroutines(t, before)

		// The engine is not wedged: the same evaluation, un-faulted, still
		// produces the exact sequential result.
		got, err := automaton.EvalParallel(g, nfa, core.Trail, lim, workers)
		if err != nil {
			t.Fatalf("workers=%d after panic: %v", workers, err)
		}
		if !samePathSequence(want, got) {
			t.Errorf("workers=%d: post-panic evaluation diverges from sequential", workers)
		}
	}
}

// waitGoroutines waits for the goroutine count to fall back to the
// baseline (scheduler exits are asynchronous after Wait returns).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Errorf("goroutines leaked: %d live, baseline %d", n, baseline)
	}
}
