package automaton_test

import (
	"testing"

	"pathalgebra/internal/automaton"
	"pathalgebra/internal/core"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/rpq"
)

func BenchmarkBuild(b *testing.B) {
	re := rpq.MustParse("((:Knows|:Likes)+/:Has_creator)*|(:Knows/:Knows)?")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		automaton.Build(re)
	}
}

func BenchmarkEvalSemantics(b *testing.B) {
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 30, Messages: 30, KnowsPerPerson: 2, LikesPerPerson: 1,
		CycleFraction: 0.3, Seed: 8,
	})
	nfa := automaton.Build(rpq.MustParse(":Knows+"))
	for _, sem := range core.AllSemantics() {
		b.Run(sem.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := automaton.Eval(g, nfa, sem, core.Limits{MaxLen: 6}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEvalTwoLabelPattern(b *testing.B) {
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 30, Messages: 40, KnowsPerPerson: 2, LikesPerPerson: 2,
		CycleFraction: 0.3, Seed: 8,
	})
	nfa := automaton.Build(rpq.MustParse("(:Likes/:Has_creator)+"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := automaton.Eval(g, nfa, core.Trail, core.Limits{MaxLen: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalShortestOnly isolates the scratch-reusing shortest-path
// evaluator (one BFS + enumeration per source node).
func BenchmarkEvalShortestOnly(b *testing.B) {
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 30, Messages: 40, KnowsPerPerson: 2, LikesPerPerson: 2,
		CycleFraction: 0.3, Seed: 8,
	})
	nfa := automaton.Build(rpq.MustParse("(:Likes/:Has_creator)+"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := automaton.Eval(g, nfa, core.Shortest, core.Limits{}); err != nil {
			b.Fatal(err)
		}
	}
}
