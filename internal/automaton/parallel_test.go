package automaton_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"pathalgebra/internal/automaton"
	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/pathset"
	"pathalgebra/internal/rpq"
)

// samePathSequence reports whether two sets hold identical paths in
// identical insertion order — the byte-identical guarantee, stronger than
// Set.Equal (which ignores order).
func samePathSequence(a, b *pathset.Set) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i, p := range a.Paths() {
		if !p.Equal(b.At(i)) {
			return false
		}
	}
	return true
}

// TestEvalParallelByteIdentical: for random graphs, random patterns and
// every semantics, EvalParallel at 2, 4 and 8 workers reproduces the
// sequential result exactly, including insertion order.
func TestEvalParallelByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	patterns := []string{
		":Knows+", ":Knows*", "(:Likes/:Has_creator)+", "(:Knows|:Likes)+", "-+",
	}
	for trial := 0; trial < 6; trial++ {
		g := ldbc.MustGenerate(ldbc.Config{
			Persons:        4 + rng.Intn(12),
			Messages:       rng.Intn(10),
			KnowsPerPerson: 1 + rng.Intn(3),
			LikesPerPerson: rng.Intn(3),
			CycleFraction:  float64(rng.Intn(11)) / 10,
			Seed:           rng.Int63(),
		})
		for _, pat := range patterns {
			nfa := automaton.Build(rpq.MustParse(pat))
			lim := core.Limits{MaxLen: 4}
			for _, sem := range core.AllSemantics() {
				name := fmt.Sprintf("trial%d/%s/%s", trial, pat, sem)
				want, err := automaton.Eval(g, nfa, sem, lim)
				if err != nil {
					t.Fatalf("%s sequential: %v", name, err)
				}
				for _, workers := range []int{2, 4, 8} {
					got, err := automaton.EvalParallel(g, nfa, sem, lim, workers)
					if err != nil {
						t.Fatalf("%s workers=%d: %v", name, workers, err)
					}
					if !samePathSequence(want, got) {
						t.Errorf("%s workers=%d: output diverges from sequential (%d vs %d paths)",
							name, workers, want.Len(), got.Len())
					}
				}
			}
		}
	}
}

// TestEvalParallelSharedBudget: MaxPaths is enforced globally across
// shards, so an over-budget query errors at every worker count.
func TestEvalParallelSharedBudget(t *testing.T) {
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 20, KnowsPerPerson: 3, CycleFraction: 0.5, Seed: 3,
	})
	nfa := automaton.Build(rpq.MustParse(":Knows+"))
	for _, workers := range []int{1, 2, 4, 8} {
		_, err := automaton.EvalParallel(g, nfa, core.Trail, core.Limits{MaxPaths: 5}, workers)
		if !errors.Is(err, core.ErrBudgetExceeded) {
			t.Errorf("workers=%d: want ErrBudgetExceeded, got %v", workers, err)
		}
	}
}

// TestShortestWorkBudget is the regression test for the Shortest MaxWork
// bypass: shortestFrom used to charge only ChargePath for admitted result
// paths — neither the phase-1 product BFS nor the phase-2 enumeration
// stack ever charged ChargeWork — so Limits.MaxWork did not bound
// Shortest-semantics evaluation at all. Both phases now charge work on
// product-state discovery and on enumeration pushes, so a small MaxWork
// must trip ErrBudgetExceeded even when MaxPaths would never be reached.
func TestShortestWorkBudget(t *testing.T) {
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 20, KnowsPerPerson: 3, CycleFraction: 0.5, Seed: 3,
	})
	nfa := automaton.Build(rpq.MustParse(":Knows+"))
	for _, workers := range []int{1, 2, 4} {
		_, err := automaton.EvalParallel(g, nfa, core.Shortest, core.Limits{MaxWork: 8}, workers)
		if !errors.Is(err, core.ErrBudgetExceeded) {
			t.Errorf("workers=%d: MaxWork=8 under Shortest: want ErrBudgetExceeded, got %v", workers, err)
		}
	}
	// A generous budget evaluates cleanly.
	if _, err := automaton.Eval(g, nfa, core.Shortest, core.Limits{}); err != nil {
		t.Errorf("default budget under Shortest: unexpected error %v", err)
	}
}

// TestEvalSeedWorkBudget is the regression test for the MaxWork bypass:
// the length-zero seed paths admitted when the automaton accepts the
// empty word must charge the work budget (1 node slot each) like every
// other admitted path, so an empty-accepting pattern over a large graph
// cannot materialize unbounded paths outside the MaxWork accounting.
func TestEvalSeedWorkBudget(t *testing.T) {
	b := graph.NewBuilder()
	const n = 20
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("n%d", i), "Person", nil)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nfa := automaton.Build(rpq.MustParse(":Knows*")) // accepts the empty word
	if !nfa.AcceptsEmpty() {
		t.Fatal("test premise: pattern must accept the empty word")
	}

	_, err = automaton.Eval(g, nfa, core.Walk, core.Limits{MaxWork: n / 2})
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Errorf("MaxWork=%d over %d seed paths: want ErrBudgetExceeded, got %v", n/2, n, err)
	}

	got, err := automaton.Eval(g, nfa, core.Walk, core.Limits{MaxWork: 2 * n})
	if err != nil {
		t.Fatalf("MaxWork=%d: unexpected error %v", 2*n, err)
	}
	if got.Len() != n {
		t.Errorf("want %d seed paths, got %d", n, got.Len())
	}
}
