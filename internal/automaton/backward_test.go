package automaton

import (
	"fmt"
	"math/rand"
	"testing"

	"pathalgebra/internal/core"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/path"
	"pathalgebra/internal/pathset"
	"pathalgebra/internal/rpq"
)

// equalOrdered compares two sets element-wise, order included.
func equalOrdered(a, b *pathset.Set) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i, p := range a.Paths() {
		if !p.Equal(b.At(i)) {
			return false
		}
	}
	return true
}

// randExpr builds a random regular path expression over the SNB labels.
func randExpr(rng *rand.Rand, depth int) rpq.Expr {
	labels := []string{ldbc.LabelKnows, ldbc.LabelLikes, ldbc.LabelHasCreator}
	if depth == 0 || rng.Intn(3) == 0 {
		if rng.Intn(6) == 0 {
			return rpq.AnyLabel{}
		}
		return rpq.Label{Name: labels[rng.Intn(len(labels))]}
	}
	l := randExpr(rng, depth-1)
	r := randExpr(rng, depth-1)
	switch rng.Intn(3) {
	case 0:
		return rpq.Concat{L: l, R: r}
	case 1:
		return rpq.Alt{L: l, R: r}
	default:
		return rpq.Concat{L: l, R: rpq.Opt{In: r}}
	}
}

// TestBackwardEqualsForward cross-checks the backward product search
// (reversed automaton over in-adjacency, results materialized reversed)
// against the forward search on random graphs, patterns and semantics,
// at several worker counts.
func TestBackwardEqualsForward(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lim := core.Limits{MaxLen: 4}
	for trial := 0; trial < 10; trial++ {
		g := ldbc.MustGenerate(ldbc.Config{
			Persons:        4 + rng.Intn(10),
			Messages:       rng.Intn(6),
			KnowsPerPerson: 1 + rng.Intn(3),
			LikesPerPerson: rng.Intn(3),
			CycleFraction:  float64(rng.Intn(11)) / 10,
			Seed:           rng.Int63(),
		})
		pattern := rpq.Plus{In: randExpr(rng, 2)}
		fwd := Build(pattern)
		bwd := Build(rpq.Reverse(pattern))
		for _, sem := range core.AllSemantics() {
			name := fmt.Sprintf("trial%d/%s/%s", trial, pattern, sem)
			want, err := Eval(g, fwd, sem, lim)
			if err != nil {
				t.Fatalf("%s forward: %v", name, err)
			}
			for _, workers := range []int{1, 4} {
				got, err := EvalWithOptions(g, bwd, sem, lim, EvalOptions{
					Workers: workers, Dir: core.Backward,
				})
				if err != nil {
					t.Fatalf("%s backward/%d: %v", name, workers, err)
				}
				if !got.Equal(want) {
					t.Errorf("%s backward/%d: %d paths, forward %d",
						name, workers, got.Len(), want.Len())
				}
			}
		}
	}
}

// TestSeededSubset: seeding the forward search at a source subset returns
// exactly the full result filtered to those sources, in the same relative
// order; seeding the backward search filters by path target.
func TestSeededSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lim := core.Limits{MaxLen: 4}
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 10, Messages: 5, KnowsPerPerson: 2, LikesPerPerson: 2,
		CycleFraction: 0.5, Seed: 11,
	})
	for trial := 0; trial < 6; trial++ {
		pattern := rpq.Plus{In: randExpr(rng, 1)}
		fwd := Build(pattern)
		bwd := Build(rpq.Reverse(pattern))
		var seeds []graph.NodeID
		for n := 0; n < g.NumNodes(); n++ {
			if rng.Intn(2) == 0 {
				seeds = append(seeds, graph.NodeID(n))
			}
		}
		inSeeds := func(n graph.NodeID) bool {
			for _, s := range seeds {
				if s == n {
					return true
				}
			}
			return false
		}
		for _, sem := range core.AllSemantics() {
			name := fmt.Sprintf("trial%d/%s/%s", trial, pattern, sem)
			full, err := Eval(g, fwd, sem, lim)
			if err != nil {
				t.Fatalf("%s full: %v", name, err)
			}
			got, err := EvalWithOptions(g, fwd, sem, lim, EvalOptions{Workers: 2, Seeds: seeds})
			if err != nil {
				t.Fatalf("%s seeded: %v", name, err)
			}
			want := full.Filter(func(p path.Path) bool { return inSeeds(p.First()) })
			if !equalOrdered(got, want) {
				t.Errorf("%s: seeded forward differs from filtered full result (got %d, want %d)",
					name, got.Len(), want.Len())
			}
			gotB, err := EvalWithOptions(g, bwd, sem, lim, EvalOptions{
				Workers: 2, Dir: core.Backward, Seeds: seeds,
			})
			if err != nil {
				t.Fatalf("%s seeded backward: %v", name, err)
			}
			wantB := full.Filter(func(p path.Path) bool { return inSeeds(p.Last()) })
			if !gotB.Equal(wantB) {
				t.Errorf("%s: seeded backward differs from target-filtered result (got %d, want %d)",
					name, gotB.Len(), wantB.Len())
			}
		}
	}
}
