package automaton_test

import (
	"errors"
	"strings"
	"testing"

	"pathalgebra/internal/automaton"
	"pathalgebra/internal/core"
	"pathalgebra/internal/engine"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/path"
	"pathalgebra/internal/rpq"
)

// word feeds a label sequence through the NFA and reports acceptance.
func word(n *automaton.NFA, labels ...string) bool {
	states := map[automaton.StateID]bool{0: true}
	for _, l := range labels {
		next := map[automaton.StateID]bool{}
		for s := range states {
			n.Visit(s, l, func(q automaton.StateID) { next[q] = true })
		}
		states = next
	}
	for s := range states {
		if n.Accepting(s) {
			return true
		}
	}
	return false
}

func TestGlushkovLanguages(t *testing.T) {
	tests := []struct {
		re     string
		accept [][]string
		reject [][]string
	}{
		{
			re:     ":A",
			accept: [][]string{{"A"}},
			reject: [][]string{{}, {"B"}, {"A", "A"}},
		},
		{
			re:     ":A+",
			accept: [][]string{{"A"}, {"A", "A"}, {"A", "A", "A"}},
			reject: [][]string{{}, {"B"}, {"A", "B"}},
		},
		{
			re:     ":A*",
			accept: [][]string{{}, {"A"}, {"A", "A"}},
			reject: [][]string{{"B"}, {"A", "B"}},
		},
		{
			re:     ":A?",
			accept: [][]string{{}, {"A"}},
			reject: [][]string{{"A", "A"}, {"B"}},
		},
		{
			re:     ":A/:B",
			accept: [][]string{{"A", "B"}},
			reject: [][]string{{}, {"A"}, {"B"}, {"B", "A"}, {"A", "B", "A"}},
		},
		{
			re:     ":A|:B",
			accept: [][]string{{"A"}, {"B"}},
			reject: [][]string{{}, {"A", "B"}, {"C"}},
		},
		{
			re:     "(:A/:B)*",
			accept: [][]string{{}, {"A", "B"}, {"A", "B", "A", "B"}},
			reject: [][]string{{"A"}, {"A", "B", "A"}, {"B", "A"}},
		},
		{
			re:     "(:A|:B)+/:C",
			accept: [][]string{{"A", "C"}, {"B", "A", "C"}},
			reject: [][]string{{"C"}, {"A"}, {"A", "C", "C"}},
		},
		{
			re:     "-/:B",
			accept: [][]string{{"X", "B"}, {"B", "B"}},
			reject: [][]string{{"B"}, {"X", "X"}},
		},
		{
			re:     "(:A*)/(:B*)",
			accept: [][]string{{}, {"A"}, {"B"}, {"A", "B"}, {"A", "A", "B", "B"}},
			reject: [][]string{{"B", "A"}},
		},
	}
	for _, tc := range tests {
		nfa := automaton.Build(rpq.MustParse(tc.re))
		for _, w := range tc.accept {
			if !word(nfa, w...) {
				t.Errorf("%s must accept %v\n%s", tc.re, w, nfa)
			}
		}
		for _, w := range tc.reject {
			if word(nfa, w...) {
				t.Errorf("%s must reject %v\n%s", tc.re, w, nfa)
			}
		}
	}
}

func TestNFAString(t *testing.T) {
	s := automaton.Build(rpq.MustParse(":A+")).String()
	for _, want := range []string{"start=0", "--A-->", "(accepting)"} {
		if !strings.Contains(s, want) {
			t.Errorf("NFA.String missing %q:\n%s", want, s)
		}
	}
}

// TestEvalKnowsPlus: the automaton baseline on Knows+ over Figure 1 must
// agree with Table 3 for each non-Walk semantics.
func TestEvalKnowsPlus(t *testing.T) {
	g := ldbc.Figure1()
	nfa := automaton.Build(rpq.MustParse(":Knows+"))
	tests := []struct {
		sem  core.Semantics
		size int
	}{
		{core.Trail, 12},
		{core.Acyclic, 7},
		{core.Simple, 9},
		{core.Shortest, 9},
	}
	for _, tc := range tests {
		got, err := automaton.Eval(g, nfa, tc.sem, core.Limits{})
		if err != nil {
			t.Fatalf("%s: %v", tc.sem, err)
		}
		if got.Len() != tc.size {
			t.Errorf("%s: %d paths, want %d:\n%s", tc.sem, got.Len(), tc.size, got.Format(g))
		}
	}
}

// TestAutomatonMatchesAlgebra cross-checks the automaton baseline against
// the algebraic engine on patterns where the two semantics coincide (the
// recursion spans the whole expression).
func TestAutomatonMatchesAlgebra(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"figure1": ldbc.Figure1(),
		"snb": ldbc.MustGenerate(ldbc.Config{
			Persons: 12, Messages: 8, KnowsPerPerson: 2, LikesPerPerson: 1,
			CycleFraction: 0.5, Seed: 42,
		}),
	}
	patterns := []string{
		":Knows+",
		"(:Likes/:Has_creator)+",
		"(:Knows|:Likes)+",
		":Knows",
		":Likes/:Has_creator",
	}
	sems := []core.Semantics{core.Trail, core.Acyclic, core.Simple, core.Shortest}
	for gname, g := range graphs {
		for _, pat := range patterns {
			re := rpq.MustParse(pat)
			nfa := automaton.Build(re)
			for _, sem := range sems {
				if sem == core.Shortest && !rpq.HasRecursion(re) {
					// Non-recursive algebra plans have no ϕ to carry the
					// Shortest filter; skip the comparison.
					continue
				}
				auto, err := automaton.Eval(g, nfa, sem, core.Limits{})
				if err != nil {
					t.Fatalf("%s/%s/%s automaton: %v", gname, pat, sem, err)
				}
				eng := engine.New(g, engine.Options{})
				alg, err := eng.EvalPaths(rpq.Compile(re, sem))
				if err != nil {
					t.Fatalf("%s/%s/%s algebra: %v", gname, pat, sem, err)
				}
				if !auto.Equal(alg) {
					t.Errorf("%s/%s/%s: automaton %d paths, algebra %d paths\nautomaton:\n%s\nalgebra:\n%s",
						gname, pat, sem, auto.Len(), alg.Len(),
						auto.Format(g), alg.Format(g))
				}
			}
		}
	}
}

// TestAutomatonMatchesAlgebraWalkBounded compares Walk semantics under the
// same length bound.
func TestAutomatonMatchesAlgebraWalkBounded(t *testing.T) {
	g := ldbc.Figure1()
	for _, pat := range []string{":Knows+", "(:Likes/:Has_creator)+", "(:Knows|:Likes)+"} {
		re := rpq.MustParse(pat)
		lim := core.Limits{MaxLen: 5}
		auto, err := automaton.Eval(g, automaton.Build(re), core.Walk, lim)
		if err != nil {
			t.Fatalf("%s automaton: %v", pat, err)
		}
		eng := engine.New(g, engine.Options{Limits: lim})
		alg, err := eng.EvalPaths(rpq.Compile(re, core.Walk))
		if err != nil {
			t.Fatalf("%s algebra: %v", pat, err)
		}
		if !auto.Equal(alg) {
			t.Errorf("%s bounded walk mismatch: automaton %d vs algebra %d",
				pat, auto.Len(), alg.Len())
		}
	}
}

// TestEvalStar: star patterns accept every node as a length-zero path.
func TestEvalStar(t *testing.T) {
	g := ldbc.Figure1()
	got, err := automaton.Eval(g, automaton.Build(rpq.MustParse(":Knows*")), core.Trail, core.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumNodes(); i++ {
		if !got.Contains(path.FromNode(graph.NodeID(i))) {
			t.Errorf("star result missing node path (%s)", g.Node(graph.NodeID(i)).Key)
		}
	}
	// Trail results of Knows* = 7 nodes + 12 trails.
	if got.Len() != 19 {
		t.Errorf("Knows* under Trail = %d paths, want 19", got.Len())
	}
}

func TestEvalWalkBudget(t *testing.T) {
	g := ldbc.Figure1()
	_, err := automaton.Eval(g, automaton.Build(rpq.MustParse(":Knows+")), core.Walk, core.Limits{MaxPaths: 10})
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("unbounded walk on cycle: err = %v, want budget error", err)
	}
}

func TestShortestBudgetError(t *testing.T) {
	g := ldbc.Figure1()
	_, err := automaton.Eval(g, automaton.Build(rpq.MustParse(":Knows+")), core.Shortest, core.Limits{MaxPaths: 3})
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want budget error", err)
	}
}

// TestShortestPerPairMinimality: every result path is minimal for its
// endpoint pair and all equal-length alternatives are present.
func TestShortestPerPairMinimality(t *testing.T) {
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 15, Messages: 0, KnowsPerPerson: 3, CycleFraction: 0.4, Seed: 7,
	})
	nfa := automaton.Build(rpq.MustParse(":Knows+"))
	shortest, err := automaton.Eval(g, nfa, core.Shortest, core.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	walks, err := automaton.Eval(g, nfa, core.Walk, core.Limits{MaxLen: 6})
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ s, d graph.NodeID }
	min := map[pair]int{}
	for _, p := range walks.Paths() {
		k := pair{p.First(), p.Last()}
		if m, ok := min[k]; !ok || p.Len() < m {
			min[k] = p.Len()
		}
	}
	for _, p := range shortest.Paths() {
		// Pairs only reachable beyond the walk bound have no reference
		// minimum; skip those.
		if m, ok := min[pair{p.First(), p.Last()}]; ok && p.Len() <= 6 && p.Len() != m {
			t.Errorf("non-minimal shortest path %s (len %d, min %d)", p.Format(g), p.Len(), m)
		}
	}
	for _, p := range walks.Paths() {
		if p.Len() == min[pair{p.First(), p.Last()}] && !shortest.Contains(p) {
			t.Errorf("minimal walk %s missing from shortest results", p.Format(g))
		}
	}
}
