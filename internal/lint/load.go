package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// The standalone loader: it shells out to `go list -export -deps -json`
// for the build-system view of the packages under analysis (file lists
// plus compiled export data for every dependency, all produced locally
// by the build cache — no network), then parses the target packages from
// source and type-checks them against that export data. This is the same
// division of labor as go/packages' LoadAllSyntax, minus the x/tools
// dependency.

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Module     *struct{ GoVersion string }
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns in dir, type-checks each
// from source, and returns them ready for Run.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var roots []*listPackage
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			pp := p
			roots = append(roots, &pp)
		}
	}

	fset := token.NewFileSet()
	imp := NewExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var pkgs []*Package
	for _, root := range roots {
		if len(root.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range root.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(root.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		goVersion := ""
		if root.Module != nil && root.Module.GoVersion != "" {
			goVersion = "go" + root.Module.GoVersion
		}
		pkg, info, err := Typecheck(fset, root.ImportPath, goVersion, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", root.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  root.ImportPath,
			Fset:  fset,
			Files: files,
			Types: pkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// NewExportImporter returns a types importer that resolves import paths
// through resolve (import path → compiled export-data file) and reads
// the export data with the standard library's gc importer.
func NewExportImporter(fset *token.FileSet, resolve func(path string) (string, bool)) types.ImporterFrom {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := resolve(path)
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
}

// Typecheck type-checks one package's parsed files. Type errors do not
// abort the check (files may be analyzed best-effort); the first error
// is returned only when the package's type information is unusable.
func Typecheck(fset *token.FileSet, path, goVersion string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := NewInfo()
	var firstErr error
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(path, fset, files, info)
	if pkg == nil {
		if firstErr != nil {
			err = firstErr
		}
		return nil, nil, err
	}
	return pkg, info, firstErr
}
