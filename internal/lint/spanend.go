package lint

import (
	"go/ast"
	"go/types"
)

// SpanEnd checks the trace-span lifetime discipline around obs: every
// span opened with Trace.Start or Span.Start must be provably ended —
// an open span misreports its duration (Tree() clamps it to render
// time) and, on the slow-query path, keeps child annotations racing
// with the log line.
//
// For every `sp := tr.Start(...)` / `sp := parent.Start(...)` (receiver
// type named Trace or Span) the analyzer accepts, in the enclosing
// function:
//
//   - defer sp.End() — the canonical scoped span;
//   - sp.End() inside a deferred function literal — the annotate-then-
//     end pattern (defer func() { sp.SetInt(...); sp.End() }()), which
//     also covers a defer inside a goroutine the span's work runs on;
//   - use of sp.End as a value — ownership transfer of the end
//     capability (e.g. returning it as a cleanup func);
//   - sp returned, stored into a struct field / composite literal, or
//     passed to another call — ownership transfer of the whole span
//     (the holder's completion path owns the End; the server's cursor
//     root span is the canonical case).
//
// A plain, non-deferred sp.End() is flagged: an early return or panic
// between Start and End leaves the span open. A Start whose result is
// discarded is always flagged.
//
// Method calls on the span itself (sp.SetInt, sp.AddInt, sp.Start for a
// child) are annotations, not transfers — they never discharge the End
// obligation.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc: "every obs Trace.Start/Span.Start span must be ended on all paths: " +
		"defer End (directly or in a deferred closure), or transfer ownership of the span",
	Run: runSpanEnd,
}

func runSpanEnd(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkSpanEnds(pass, fn)
			}
		}
	}
	return nil
}

func checkSpanEnds(pass *Pass, fn *ast.FuncDecl) {
	var spans []*ast.Ident
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method, ok := methodCall(pass.Info, call)
		if !ok || method != "Start" || (recv != "Trace" && recv != "Span") {
			return true
		}
		id, bound := spanBinding(fn.Body, call)
		if !bound {
			pass.Reportf(call.Pos(), "%s.Start opens a span but the result is dropped; the span can never be ended", recv)
			return true
		}
		if id != nil {
			spans = append(spans, id)
		}
		return true
	})

	for _, id := range spans {
		// Spans may bind via := (Defs) or land in a pre-declared var
		// (Uses) — the conditional-tracing pattern `var root *obs.Span;
		// if traced { root = tr.Start(...) }`.
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		u := spanUsage{pass: pass, def: obj}
		u.scan(fn.Body, id)
		switch {
		case u.deferred:
			// Scoped span: End runs on every exit path.
		case u.transferred:
			// Ownership moved; the holder ends it.
		case u.plainEnd:
			pass.Reportf(id.Pos(), "span %s is ended without defer: an early return or panic between Start and End leaves the span open; use defer %s.End() or transfer ownership", id.Name, id.Name)
		default:
			pass.Reportf(id.Pos(), "span %s is never ended: defer %s.End() or transfer ownership of the span", id.Name, id.Name)
		}
	}
}

// spanUsage classifies how one started span is used in a function.
type spanUsage struct {
	pass *Pass
	def  types.Object

	deferred, transferred, plainEnd bool
}

// usesVar reports whether e is an identifier use of the span variable.
func (u *spanUsage) usesVar(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && u.pass.Info.Uses[id] == u.def
}

// endValue reports whether e is `sp.End` (the method value).
func (u *spanUsage) endValue(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	return ok && u.usesVar(sel.X) && sel.Sel.Name == "End"
}

// endsWithin reports whether the function literal calls sp.End()
// anywhere in its body.
func (u *spanUsage) endsWithin(fl *ast.FuncLit) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && u.endValue(call.Fun) {
			found = true
		}
		return !found
	})
	return found
}

func (u *spanUsage) scan(body *ast.BlockStmt, id *ast.Ident) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if u.endValue(n.Call.Fun) {
				u.deferred = true
				return false
			}
			// defer func() { sp.SetInt(...); sp.End() }() — the End
			// inside the deferred closure discharges the obligation;
			// skip the subtree so it is not also counted as a plain End.
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok && u.endsWithin(fl) {
				u.deferred = true
				return false
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && u.usesVar(sel.X) {
				// Method calls on the span: End is the lifetime event;
				// SetInt/AddInt/Start(child) are annotations, never a
				// transfer.
				if sel.Sel.Name == "End" {
					u.plainEnd = true
				}
				return true
			}
			for _, arg := range n.Args {
				if u.usesVar(arg) || u.endValue(arg) {
					u.transferred = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if u.usesVar(r) || u.endValue(r) {
					u.transferred = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				if u.endValue(r) {
					u.transferred = true
				}
				if u.usesVar(r) && !definesIdent(n, id) {
					u.transferred = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if u.usesVar(e) || u.endValue(e) {
					u.transferred = true
				}
			}
		}
		return true
	})
}

// spanBinding locates how call's result is bound: the binding
// identifier (nil for _), and bound=false when the result is dropped as
// a bare expression statement. A span returned, passed along, or placed
// directly in a composite literal counts as bound (ownership transfer).
func spanBinding(body *ast.BlockStmt, call *ast.CallExpr) (id *ast.Ident, bound bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				if r == call && i < len(n.Lhs) {
					bound = true
					if li, ok := n.Lhs[i].(*ast.Ident); ok && li.Name != "_" {
						id = li
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if v == call && i < len(n.Names) {
					bound = true
					if n.Names[i].Name != "_" {
						id = n.Names[i]
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if r == call {
					bound = true
				}
			}
		case *ast.CallExpr:
			if n == call {
				return true
			}
			for _, a := range n.Args {
				if a == call {
					bound = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if e == call {
					bound = true
				}
			}
		}
		return true
	})
	return id, bound
}
