package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// RecoverGuard checks the panic-isolation discipline in the packages
// that own long-lived or request-scoped goroutines: every `go` statement
// must install a recover handler, or the goroutine turns any panic into
// a process crash that no server-side isolation can catch.
//
// A goroutine counts as guarded when its body — the launched func
// literal, or the same-package function/method it calls — contains a
// defer that calls recover() directly:
//
//	go func() {
//	    defer func() { handle(recover()) }()
//	    ...
//	}()
//
//	go s.loop()        // func (s *S) loop() { defer func() { ... recover() ... }(); ... }
//
// The deferred handler may also be a same-package named function, as
// long as that function calls recover() in its own body (recover only
// works in the frame of the deferred call). recover() inside a nested
// func literal does not count — it would run in the wrong frame.
// Goroutines launching functions from other packages are flagged too:
// the analyzer cannot see their bodies, so wrap them in a guarded
// literal or suppress with a reason:
//
//	//lint:ignore recoverguard <why a panic here is acceptable>
var RecoverGuard = &Analyzer{
	Name: "recoverguard",
	Doc: "every goroutine launched in internal/automaton, internal/server and internal/graph " +
		"must install a recover handler (a defer calling recover() directly), or carry a " +
		"//lint:ignore recoverguard suppression with a reason",
	Run: runRecoverGuard,
}

// recoverScopeRe selects the packages under the panic-isolation mandate.
var recoverScopeRe = regexp.MustCompile(`(^|/)(automaton|server|graph)$`)

func runRecoverGuard(pass *Pass) error {
	if pass.Pkg == nil || !recoverScopeRe.MatchString(pass.Pkg.Path()) {
		return nil
	}
	decls := packageFuncDecls(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineGuarded(pass, g.Call, decls) {
				pass.Reportf(g.Pos(), "goroutine without a recover handler: a panic here crashes the process; defer a recover() in the goroutine body (or suppress with a reason)")
			}
			return true
		})
	}
	return nil
}

// packageFuncDecls indexes the package's function and method
// declarations by their defining object, so `go f()` and `go s.m()`
// resolve to inspectable bodies.
func packageFuncDecls(pass *Pass) map[types.Object]*ast.FuncDecl {
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj := pass.Info.Defs[fn.Name]; obj != nil {
					decls[obj] = fn
				}
			}
		}
	}
	return decls
}

// goroutineGuarded reports whether the goroutine body installs a recover
// handler. Unresolvable targets (other packages' functions, function
// values) report false: the analyzer cannot prove isolation it cannot
// see.
func goroutineGuarded(pass *Pass, call *ast.CallExpr, decls map[types.Object]*ast.FuncDecl) bool {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return bodyInstallsRecover(pass, lit.Body, decls)
	}
	if fd := resolveFuncDecl(pass, call.Fun, decls); fd != nil {
		return bodyInstallsRecover(pass, fd.Body, decls)
	}
	return false
}

// resolveFuncDecl maps a call target expression to its same-package
// declaration; nil for anything it cannot resolve statically.
func resolveFuncDecl(pass *Pass, fun ast.Expr, decls map[types.Object]*ast.FuncDecl) *ast.FuncDecl {
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	if obj := pass.Info.Uses[id]; obj != nil {
		return decls[obj]
	}
	return nil
}

// bodyInstallsRecover reports whether body has a defer statement that
// installs a recover handler. Defers inside nested func literals do not
// count — they only guard the nested function's own frame, and only if
// it is itself launched or deferred.
func bodyInstallsRecover(pass *Pass, body *ast.BlockStmt, decls map[types.Object]*ast.FuncDecl) bool {
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if d, isDefer := n.(*ast.DeferStmt); isDefer && deferInstallsRecover(pass, d, decls) {
			guarded = true
			return false
		}
		return true
	})
	return guarded
}

// deferInstallsRecover reports whether the deferred call's frame calls
// recover() directly: a deferred func literal containing recover(), or a
// deferred same-package function whose body does.
func deferInstallsRecover(pass *Pass, d *ast.DeferStmt, decls map[types.Object]*ast.FuncDecl) bool {
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		return containsDirectRecover(pass, lit.Body)
	}
	if fd := resolveFuncDecl(pass, d.Call.Fun, decls); fd != nil {
		return containsDirectRecover(pass, fd.Body)
	}
	return false
}

// containsDirectRecover reports whether body calls the recover builtin
// outside any nested func literal (recover in a nested literal runs in
// the wrong frame and returns nil).
func containsDirectRecover(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "recover" {
			return true
		}
		// The builtin, not a shadowing declaration.
		if obj := pass.Info.Uses[id]; obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
				return true
			}
		}
		found = true
		return false
	})
	return found
}
