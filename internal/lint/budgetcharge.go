package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// BudgetCharge checks the budget-accounting invariant of the evaluation
// hot paths (the PR 2 / PR 3 MaxWork-bypass bug class): every loop that
// grows search state charges the shared core.Budget.
//
// Scope: non-test files of the evaluation packages (import path ending
// in internal/automaton, internal/core or internal/engine). Within a
// *budgeted* function — one with a core.Budget value in scope — three
// kinds of state growth must be charged inside their innermost loop:
//
//   - visited marks (RefSet.Add, or writes into a product-state-keyed
//     map) must be covered by a ChargeWork call — these are exactly the
//     auxiliary materializations MaxWork exists to bound;
//   - frontier pushes (append of a value carrying a path.Ref or an NFA
//     StateID) must be covered by a ChargeWork or ChargePath call;
//   - result admissions (Set.Add / Set.AddArena / Set.AddArenaReversed)
//     must be covered by a charge in the innermost loop, or anywhere in
//     the function for loop-free admissions (e.g. the empty-word seed
//     path — the exact site of the PR 2 bypass).
//
// Loop-free marks and pushes are exempt: seeding a search costs O(1)
// per source and is bounded by the input, not the expansion.
//
// A function with NO budget in scope that still loops over graph
// adjacency (Out/In/OutRuns/InRuns/OutWithSymbol/InWithSymbol) is
// flagged too: either the budget must be threaded through it, or a
// //lint:ignore budgetcharge suppression must say why accounting is the
// caller's job.
var BudgetCharge = &Analyzer{
	Name: "budgetcharge",
	Doc: "evaluation loops that grow search state must charge the core.Budget " +
		"(visited marks: ChargeWork; frontier pushes and admissions: ChargeWork or ChargePath)",
	Run: runBudgetCharge,
}

// budgetScopeRe selects the packages whose loops the analyzer audits.
var budgetScopeRe = regexp.MustCompile(`(^|/)(automaton|core|engine|reach)$`)

// Adjacency primitives of graph.Graph — iterating them is the signature
// of an extension loop.
var adjacencyMethods = map[string]bool{
	"Out": true, "In": true,
	"OutRuns": true, "InRuns": true,
	"OutWithSymbol": true, "InWithSymbol": true,
}

func runBudgetCharge(pass *Pass) error {
	if pass.Pkg == nil || !budgetScopeRe.MatchString(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkBudgetFunc(pass, fn)
		}
	}
	return nil
}

// chargeSite is one state-growth site and the charge it requires.
type chargeSite struct {
	node ast.Node
	kind string // "mark", "push", "admit"
	desc string
}

func checkBudgetFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Info
	budgeted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && namedTypeName(pass.TypeOf(e)) == "Budget" {
			budgeted = true
			return false
		}
		return true
	})

	loops := collectLoops(fn.Body)

	if !budgeted {
		// Helper rule: adjacency iteration with no budget in scope.
		for _, loop := range loops {
			if loopCallsAdjacency(pass, loop) && innermostLoopFor(loops, loop) == nil {
				pass.Reportf(loop.Pos(),
					"loop iterates graph adjacency but no core.Budget is in scope; "+
						"thread the budget through %s or suppress with a reason", fn.Name.Name)
			}
		}
		return
	}

	var sites []chargeSite
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if recv, method, ok := methodCall(info, n); ok {
				switch {
				case method == "Add" && recv == "RefSet":
					sites = append(sites, chargeSite{n, "mark", "visited-set mark"})
				case recv == "Set" && (method == "Add" || method == "AddArena" || method == "AddArenaReversed"):
					sites = append(sites, chargeSite{n, "admit", "result admission (" + method + ")"})
				}
			} else if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) >= 2 {
				if isSearchStateType(pass.TypeOf(n.Args[1])) {
					sites = append(sites, chargeSite{n, "push", "frontier push"})
				}
			}
		case *ast.AssignStmt:
			// dist[productState{...}] = d style visited marks.
			for _, lhs := range n.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				mt, ok := pass.TypeOf(ix.X).(*types.Map)
				if !ok {
					continue
				}
				if isSearchStateType(mt.Key()) {
					sites = append(sites, chargeSite{n, "mark", "product-state map mark"})
				}
			}
		}
		return true
	})

	for _, site := range sites {
		loop := innermostLoop(loops, site.node)
		var scope ast.Node
		if loop != nil {
			scope = loop
		} else {
			if site.kind != "admit" {
				continue // loop-free marks/pushes are bounded seeding
			}
			scope = fn.Body
		}
		work, path := chargesIn(pass, scope)
		ok := false
		switch site.kind {
		case "mark":
			ok = work
		case "push", "admit":
			ok = work || path
		}
		if !ok {
			need := "Budget.ChargeWork or ChargePath"
			if site.kind == "mark" {
				need = "Budget.ChargeWork"
			}
			where := "innermost enclosing loop"
			if loop == nil {
				where = "function"
			}
			pass.Reportf(site.node.Pos(), "%s is not budget-charged: the %s must call %s (MaxWork/MaxPaths bypass)",
				site.desc, where, need)
		}
	}
}

// isSearchStateType reports whether t is a search-state value: a type
// named Ref, or a struct with a field of type Ref or StateID. Frontier
// and worklist items in the evaluators all have this shape.
func isSearchStateType(t types.Type) bool {
	if t == nil {
		return false
	}
	if namedTypeName(t) == "Ref" {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		switch namedTypeName(st.Field(i).Type()) {
		case "Ref", "StateID":
			return true
		}
	}
	return false
}

// collectLoops returns every for/range statement in body, outermost
// first.
func collectLoops(body *ast.BlockStmt) []ast.Stmt {
	var loops []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
		case *ast.FuncLit:
			// Function literals are separate accounting scopes.
			return false
		}
		return true
	})
	return loops
}

// innermostLoop returns the innermost loop whose source range encloses n.
func innermostLoop(loops []ast.Stmt, n ast.Node) ast.Stmt {
	var best ast.Stmt
	for _, l := range loops {
		if l.Pos() <= n.Pos() && n.End() <= l.End() && l != n {
			if best == nil || (best.Pos() <= l.Pos() && l.End() <= best.End()) {
				best = l
			}
		}
	}
	return best
}

// innermostLoopFor is innermostLoop for a loop itself: its enclosing
// loop, nil when it is outermost.
func innermostLoopFor(loops []ast.Stmt, loop ast.Stmt) ast.Stmt {
	return innermostLoop(loops, loop)
}

// loopCallsAdjacency reports whether the loop's subtree (or its range
// expression) calls a graph adjacency primitive or ranges over one.
func loopCallsAdjacency(pass *Pass, loop ast.Stmt) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, method, ok := methodCall(pass.Info, call); ok && recv == "Graph" && adjacencyMethods[method] {
			found = true
		}
		return !found
	})
	return found
}

// chargesIn reports which Budget charges appear in scope's subtree.
func chargesIn(pass *Pass, scope ast.Node) (work, path bool) {
	ast.Inspect(scope, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, method, ok := methodCall(pass.Info, call); ok && recv == "Budget" {
			switch method {
			case "ChargeWork":
				work = true
			case "ChargePath":
				path = true
			}
		}
		return !(work && path)
	})
	return work, path
}
