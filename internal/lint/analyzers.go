package lint

// All returns the full pathalgebravet analyzer suite, in reporting
// order.
func All() []*Analyzer {
	return []*Analyzer{
		BudgetCharge,
		DetOrder,
		EpochPin,
		ErrSentinel,
		HotPathAlloc,
		RecoverGuard,
		SpanEnd,
	}
}
