// Package lint is pathalgebra's static-analysis suite: a small,
// dependency-free go/analysis-style framework plus the project-specific
// analyzers that machine-check the engine's hand-maintained invariants
// (budget accounting, epoch pinning, hot-path allocation discipline,
// deterministic iteration order, typed error sentinels).
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis —
// Analyzer, Pass, Reportf, analysistest-style fixtures — but is built on
// the standard library alone (go/ast, go/types, go/importer and `go list
// -export` for type information), so the module keeps a zero-dependency
// go.mod and the checker builds in hermetic environments with no module
// proxy access.
//
// Two conventions are recognized in analyzed source:
//
//   - `//pathalgebra:hotpath` in a function's doc comment opts the
//     function into the hotpathalloc analyzer's allocation ban.
//   - `//lint:ignore <analyzer>[,<analyzer>...] reason` on the flagged
//     line, or on the line immediately above it, suppresses the named
//     analyzers' diagnostics for that line. The reason is mandatory by
//     convention and should say why the invariant holds anyway.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. It is the stdlib-only
// counterpart of analysis.Analyzer: Run inspects one package via a Pass
// and reports findings through pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// suppressions.
	Name string
	// Doc is the one-paragraph description shown by `pathalgebravet help`.
	Doc string
	// Run analyzes one package.
	Run func(*Pass) error
}

// A Pass connects an Analyzer to one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test files (test files are
	// excluded by the runner: the invariants the suite checks are
	// production-code invariants).
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-safe Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// A Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File // all parsed files, test files included
	Types *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every standard map allocated — the
// analyzers rely on Types, Defs, Uses and Selections being populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Run applies the analyzers to pkg, drops suppressed findings, and
// returns the rest sorted by position. Test files (*_test.go) are never
// analyzed, matching the suite's production-invariant scope.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var files []*ast.File
	sup := newSuppressions()
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, f)
		sup.scan(pkg.Fset, f)
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzing %s: %w", a.Name, pkg.Path, err)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !sup.matches(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}

// ignoreRe matches the suppression directive: //lint:ignore a,b reason.
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+([\w,]+)(?:\s+(.*))?$`)

// suppressions records, per file, the lines covered by //lint:ignore
// directives and the analyzers they name. A directive covers its own
// line (trailing comment) and the line below it (leading comment).
type suppressions struct {
	byFileLine map[string]map[int]map[string]bool
}

func newSuppressions() *suppressions {
	return &suppressions{byFileLine: make(map[string]map[int]map[string]bool)}
}

func (s *suppressions) scan(fset *token.FileSet, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := ignoreRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			lines := s.byFileLine[pos.Filename]
			if lines == nil {
				lines = make(map[int]map[string]bool)
				s.byFileLine[pos.Filename] = lines
			}
			for _, line := range []int{pos.Line, pos.Line + 1} {
				names := lines[line]
				if names == nil {
					names = make(map[string]bool)
					lines[line] = names
				}
				for _, n := range strings.Split(m[1], ",") {
					names[n] = true
				}
			}
		}
	}
}

func (s *suppressions) matches(d Diagnostic) bool {
	return s.byFileLine[d.Pos.Filename][d.Pos.Line][d.Analyzer]
}

// HasHotpathDirective reports whether the function declaration opts into
// the hot-path allocation ban via a //pathalgebra:hotpath doc line.
func HasHotpathDirective(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == "//pathalgebra:hotpath" {
			return true
		}
	}
	return false
}

// namedTypeName returns the name of t's core named type, looking through
// pointers and aliases; "" when t has none (slices, maps, builtins...).
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	} else if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	if a, ok := t.(*types.Alias); ok {
		return a.Obj().Name()
	}
	return ""
}

// methodCall resolves call as recv.Name(...): the receiver's named type
// and the method name. ok is false for plain function and package calls.
func methodCall(info *types.Info, call *ast.CallExpr) (recvType, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	if s, found := info.Selections[sel]; found && s.Kind() == types.MethodVal {
		return namedTypeName(s.Recv()), sel.Sel.Name, true
	}
	return "", "", false
}

// pkgFuncCall resolves call as pkg.Name(...) for a package-level
// function of the package named pkgName (e.g. fmt, strings).
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgName string) (fn string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg || pn.Imported().Name() != pkgName {
		return "", false
	}
	return sel.Sel.Name, true
}
