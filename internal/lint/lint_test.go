package lint

// Golden tests for the analyzer suite, in the style of x/tools'
// analysistest: each analyzer runs over a fixture package under
// testdata/src/<analyzer>/..., and `// want `regex`` comments in the
// fixture assert the diagnostics, line by line. Fixtures type-check for
// real — stdlib imports resolve through the build cache's export data
// (`go list -export`), same as the production loader.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var (
	stdExportsOnce sync.Once
	stdExports     map[string]string
	stdExportsErr  error
)

// stdlibResolve returns an import-path → export-data resolver for the
// stdlib packages fixtures import, shelling out to `go list -export`
// once per test run.
func stdlibResolve(t *testing.T) func(string) (string, bool) {
	t.Helper()
	stdExportsOnce.Do(func() {
		cmd := exec.Command("go", "list", "-export", "-deps", "-json",
			"fmt", "errors", "strings", "sort")
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			stdExportsErr = fmt.Errorf("go list -export: %v\n%s", err, stderr.Bytes())
			return
		}
		stdExports = make(map[string]string)
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				stdExportsErr = err
				return
			}
			if p.Export != "" {
				stdExports[p.ImportPath] = p.Export
			}
		}
	})
	if stdExportsErr != nil {
		t.Fatalf("loading stdlib export data: %v", stdExportsErr)
	}
	return func(path string) (string, bool) {
		f, ok := stdExports[path]
		return f, ok
	}
}

// wantRe matches the expectation comment: // want `regex`
var wantRe = regexp.MustCompile("//\\s*want\\s+`([^`]+)`")

type wantKey struct {
	file string
	line int
}

// runFixture loads testdata/src/<pkgPath>, runs the analyzer, and
// checks the diagnostics against the fixture's want comments.
func runFixture(t *testing.T, a *Analyzer, pkgPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	imp := NewExportImporter(fset, stdlibResolve(t))
	tpkg, info, err := Typecheck(fset, pkgPath, "", files, imp)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	diags, err := Run(&Package{Path: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	// Collect expectations.
	wants := make(map[wantKey][]*regexp.Regexp)
	total := 0
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := fset.Position(c.Pos())
				k := wantKey{pos.Filename, pos.Line}
				wants[k] = append(wants[k], re)
				total++
			}
		}
	}
	if total == 0 {
		t.Fatalf("fixture %s has no want expectations", pkgPath)
	}

	// Match diagnostics against expectations.
	for _, d := range diags {
		k := wantKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

func TestBudgetCharge(t *testing.T) { runFixture(t, BudgetCharge, "budgetcharge/automaton") }
func TestDetOrder(t *testing.T)     { runFixture(t, DetOrder, "detorder/a") }
func TestEpochPin(t *testing.T)     { runFixture(t, EpochPin, "epochpin/a") }
func TestErrSentinel(t *testing.T)  { runFixture(t, ErrSentinel, "errsentinel/a") }
func TestHotPathAlloc(t *testing.T) { runFixture(t, HotPathAlloc, "hotpathalloc/a") }
func TestRecoverGuard(t *testing.T) { runFixture(t, RecoverGuard, "recoverguard/server") }
func TestSpanEnd(t *testing.T)      { runFixture(t, SpanEnd, "spanend/a") }

// TestRepoClean runs the full suite over the whole module, pinning the
// zero-findings invariant CI enforces: any new violation (or analyzer
// regression producing false positives) fails tier-1 tests, not just
// the lint job.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load(filepath.Join("..", ".."), "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, pkg := range pkgs {
		diags, err := Run(pkg, All())
		if err != nil {
			t.Fatalf("analyzing %s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
