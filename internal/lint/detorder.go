package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetOrder checks deterministic-output discipline: the engine's contract
// is byte-identical results at every worker count, which a `range` over
// a Go map silently breaks — map iteration order is randomized per run.
//
// The analyzer flags a map range whose body feeds order-sensitive
// output: appending to a slice, writing to an io.Writer / strings.Builder
// / bytes.Buffer (Write*, Fprint*, Encode), building a string by
// concatenation, or sending on a channel. Bodies that only fold the
// entries order-insensitively — counting, summing, set membership,
// writing into another map — are permitted: those are exactly the
// aggregations where iteration order cannot be observed.
//
// Two canonical deterministic idioms are recognized and allowed:
//
//   - collect-then-sort: the appended-to slice is passed to a sort. or
//     slices. call after the loop in the same function;
//   - keyed writes: append into a slot indexed by the range key
//     (m2[k] = append(m2[k], ...)) — each key owns its slot, so the
//     visit order is unobservable.
//
// The fix is the repo's standard pattern: collect the keys, sort them,
// range over the sorted slice. Where order-insensitivity holds for a
// non-obvious reason, suppress with //lint:ignore detorder <why>.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc: "no unsorted map iteration in code that feeds deterministic output " +
		"(merge order, rendering, NDJSON encoding, footprint construction)",
	Run: runDetOrder,
}

// orderSinkMethods are method names whose call inside a map-range body
// makes iteration order observable in output.
var orderSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

// orderSinkFmtFuncs are fmt functions that emit directly to a writer.
var orderSinkFmtFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runDetOrder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if sink := orderSensitiveSink(pass, fn, rng); sink != "" {
					pass.Reportf(rng.Pos(), "map iteration order is randomized but this loop %s; range over sorted keys for deterministic output", sink)
				}
				return true
			})
		}
	}
	return nil
}

// orderSensitiveSink reports how the loop body observes iteration
// order; "" when every statement is order-insensitive.
func orderSensitiveSink(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) string {
	keyObj := rangeKeyObject(pass, rng)
	sink := ""
	isString := func(e ast.Expr) bool {
		t := pass.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(n.Lhs[0]) {
				sink = "concatenates into a string"
				return false
			}
			// Appends via assignment: x = append(x, ...). Keyed writes
			// (x[k] = append(x[k], ...) with k the range key) own their
			// slot per key and are order-insensitive.
			for i, r := range n.Rhs {
				call, ok := r.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) {
					continue
				}
				if i < len(n.Lhs) && isKeyedSlot(pass, n.Lhs[i], keyObj) {
					continue
				}
				if len(call.Args) > 0 && sortedAfter(pass, fn, rng, call.Args[0]) {
					continue
				}
				sink = "appends to a slice"
				return false
			}
		case *ast.CallExpr:
			if isBuiltinAppend(pass, n) {
				// append in non-assignment position (argument, return...):
				// conservatively a sink unless the target is sorted later.
				if parentAssignsAppend(fn, n) {
					return true // handled by the AssignStmt case
				}
				if len(n.Args) > 0 && sortedAfter(pass, fn, rng, n.Args[0]) {
					return true
				}
				sink = "appends to a slice"
				return false
			}
			if _, m, ok := methodCall(pass.Info, n); ok && orderSinkMethods[m] {
				sink = "writes to an output sink (" + m + ")"
				return false
			}
			if name, ok := pkgFuncCall(pass.Info, n, "fmt"); ok && orderSinkFmtFuncs[name] {
				sink = "prints via fmt." + name
				return false
			}
		case *ast.SendStmt:
			sink = "sends on a channel"
			return false
		}
		return true
	})
	return sink
}

// rangeKeyObject resolves the object of the range statement's key
// variable, nil when absent or blank.
func rangeKeyObject(pass *Pass, rng *ast.RangeStmt) types.Object {
	id, ok := rng.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

// isBuiltinAppend reports whether call is the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	obj := pass.Info.Uses[id]
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// isKeyedSlot reports whether lhs is an index expression whose index
// uses the range key — a per-key slot write.
func isKeyedSlot(pass *Pass, lhs ast.Expr, keyObj types.Object) bool {
	if keyObj == nil {
		return false
	}
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	uses := false
	ast.Inspect(ix.Index, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == keyObj {
			uses = true
		}
		return !uses
	})
	return uses
}

// parentAssignsAppend reports whether the append call is the direct RHS
// of an assignment somewhere in fn (the usual x = append(x, ...) form),
// so the AssignStmt case owns its classification.
func parentAssignsAppend(fn *ast.FuncDecl, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, r := range as.Rhs {
			if r == call {
				found = true
			}
		}
		return !found
	})
	return found
}

// sortedAfter reports whether expr (the appended-to slice) is passed to
// a sort. or slices. call after the range loop in the same function —
// the collect-then-sort idiom, whose result is order-independent.
func sortedAfter(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, target ast.Expr) bool {
	want := types.ExprString(target)
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		name, ok := pkgFuncCall(pass.Info, call, "sort")
		if !ok {
			name, ok = pkgFuncCall(pass.Info, call, "slices")
		}
		if !ok || len(call.Args) == 0 {
			return true
		}
		_ = name
		if types.ExprString(call.Args[0]) == want {
			found = true
		}
		return !found
	})
	return found
}
