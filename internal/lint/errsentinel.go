package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrSentinel enforces the typed-error contract established in PR 5/6:
// production code never matches error message text — budget exhaustion,
// cancellation, draining and the store's validation failures are all
// errors.Is-able sentinels (core.ErrBudgetExceeded, graph.ErrUnknownNode,
// ...), and message text is allowed to change without breaking callers.
//
// Flagged in non-test code:
//
//   - err.Error() == "..." / != comparisons (either operand);
//   - strings.Contains / HasPrefix / HasSuffix / EqualFold applied to an
//     err.Error() result.
//
// Test files are exempt (the runner never analyzes them): parse-error
// message assertions without a sentinel legitimately live in tests.
var ErrSentinel = &Analyzer{
	Name: "errsentinel",
	Doc: "non-test code must compare errors with errors.Is/errors.As against typed " +
		"sentinels, never by matching message strings",
	Run: runErrSentinel,
}

// errStringFuncs are the strings-package matchers that indicate message
// sniffing when applied to err.Error().
var errStringFuncs = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true, "EqualFold": true,
}

func runErrSentinel(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if (n.Op == token.EQL || n.Op == token.NEQ) &&
					(isErrorTextCall(pass, n.X) || isErrorTextCall(pass, n.Y)) {
					pass.Reportf(n.OpPos, "comparing error message text; use errors.Is (or errors.As) against a typed sentinel")
				}
			case *ast.CallExpr:
				name, ok := pkgFuncCall(pass.Info, n, "strings")
				if !ok || !errStringFuncs[name] {
					return true
				}
				for _, arg := range n.Args {
					if isErrorTextCall(pass, arg) {
						pass.Reportf(n.Pos(), "matching error message text with strings.%s; use errors.Is (or errors.As) against a typed sentinel", name)
						break
					}
				}
			}
			return true
		})
	}
	return nil
}

// isErrorTextCall reports whether e is a call of Error() on an
// error-typed value.
func isErrorTextCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return false
	}
	return types.Implements(t, errorInterface()) ||
		(t.Underlying() != nil && isErrorInterfaceType(t))
}

// errorIfaceCache caches the universe error interface.
var errorIfaceCached *types.Interface

func errorInterface() *types.Interface {
	if errorIfaceCached == nil {
		errorIfaceCached = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	}
	return errorIfaceCached
}

func isErrorInterfaceType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}
