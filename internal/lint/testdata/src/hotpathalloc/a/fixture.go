// Package a is a hotpathalloc fixture: allocation constructs inside
// //pathalgebra:hotpath functions are flagged; unannotated functions
// and the amortized append pattern are not.
package a

import "fmt"

func sink(v any) {}

//pathalgebra:hotpath
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//pathalgebra:hotpath
func format(n int) string {
	return fmt.Sprintf("%d", n) // want `fmt.Sprintf allocates`
}

//pathalgebra:hotpath
func sliceLit(n int) []int {
	return []int{n} // want `slice literal allocates`
}

//pathalgebra:hotpath
func mapLit() map[string]int {
	return map[string]int{} // want `map literal allocates`
}

//pathalgebra:hotpath
func grow(n int) []int {
	return make([]int, n) // want `make allocates`
}

//pathalgebra:hotpath
func closure(n int) func() int {
	return func() int { return n } // want `function literal allocates`
}

//pathalgebra:hotpath
func box(n int) {
	sink(n) // want `boxes a concrete value into interface`
}

// Clean: indexing, arithmetic and comparisons allocate nothing.
//
//pathalgebra:hotpath
func index(xs []int, i int) int {
	return xs[i] + 1
}

// Clean: append into caller-owned scratch is the amortized-zero
// pattern, deliberately exempt.
//
//pathalgebra:hotpath
func push(xs []int, v int) []int {
	return append(xs, v)
}

// Clean: pointers fit the interface word without boxing.
//
//pathalgebra:hotpath
func passPointer(g *int) {
	sink(g)
}

// Clean: no directive, no allocation ban.
func coldAlloc(n int) []int {
	return make([]int, n)
}

// Suppressed: a cold fallback inside a hot function, with the reason.
//
//pathalgebra:hotpath
func suppressed(n int) []int {
	//lint:ignore hotpathalloc cold fallback: runs once per process
	return make([]int, n)
}
