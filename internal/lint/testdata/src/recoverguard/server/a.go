// Package server is the recoverguard fixture: its path ends in a
// scoped package name, so every goroutine here must install a recover
// handler.
package server

func work() {}

func handle(r any) {
	_ = r
}

// guardedLit: the canonical pattern — deferred literal, direct recover.
func guardedLit() {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				handle(r)
			}
		}()
		work()
	}()
}

// guardedHandlerArg: recover's result handed to a handler is still a
// direct recover call in the deferred frame.
func guardedHandlerArg() {
	go func() {
		defer func() { handle(recover()) }()
		work()
	}()
}

// guardedDecl: launching a same-package function that defers recover.
func guardedDecl() {
	go loop()
}

func loop() {
	defer func() { handle(recover()) }()
	work()
}

// guardedDeferredDecl: the deferred handler may itself be a named
// same-package function, as long as it calls recover directly.
func guardedDeferredDecl() {
	go func() {
		defer catch()
		work()
	}()
}

func catch() {
	if r := recover(); r != nil {
		handle(r)
	}
}

type svc struct{}

func (svc) run() {
	defer func() { handle(recover()) }()
	work()
}

func (svc) bare() { work() }

// guardedMethod: method resolution works like function resolution.
func guardedMethod() {
	var s svc
	go s.run()
}

func bareLit() {
	go func() { // want `goroutine without a recover handler`
		work()
	}()
}

func bareDecl() {
	go work() // want `goroutine without a recover handler`
}

func bareMethod() {
	var s svc
	go s.bare() // want `goroutine without a recover handler`
}

// nestedRecover: a recover inside a nested literal runs in the wrong
// frame — the goroutine is NOT guarded.
func nestedRecover() {
	go func() { // want `goroutine without a recover handler`
		f := func() {
			defer func() { handle(recover()) }()
		}
		f()
		work()
	}()
}

// deferRecoverAlone: `defer recover()` famously does not stop a panic
// (recover must be called BY the deferred function, and the bare builtin
// is not resolvable as one) — flagged.
func deferRecoverAlone() {
	go func() { // want `goroutine without a recover handler`
		defer recover()
		work()
	}()
}

// suppressed: the escape hatch, reason mandatory by convention.
func suppressed() {
	//lint:ignore recoverguard fixture demonstrates the suppression path
	go work()
}
