// Package a is a spanend fixture: Trace/Span mirror the obs tracing
// API (Start opens a span that must be ended or handed off).
package a

type Trace struct{}

func (t *Trace) Start(name string) *Span { return &Span{} }

type Span struct{}

func (s *Span) Start(name string) *Span  { return &Span{} }
func (s *Span) End()                     {}
func (s *Span) SetInt(k string, v int64) {}

type holder struct {
	root *Span
}

func work()         {}
func sink(sp *Span) {}

// True positive: the span is dropped on the floor.
func dropped(tr *Trace) {
	tr.Start("query") // want `result is dropped`
	work()
}

// True positive: annotated but never ended.
func neverEnded(tr *Trace) {
	sp := tr.Start("query") // want `never ended`
	sp.SetInt("paths", 1)
	work()
}

// True positive: ended, but not deferred — an early return or panic
// between Start and End leaves the span open.
func plainEnd(tr *Trace) {
	sp := tr.Start("query") // want `ended without defer`
	work()
	sp.End()
}

// Clean: the canonical scoped span.
func scoped(tr *Trace) {
	sp := tr.Start("query")
	defer sp.End()
	work()
}

// Clean: annotate-then-end inside a deferred closure (the automaton's
// search-span pattern).
func deferredClosure(tr *Trace) {
	sp := tr.Start("search")
	defer func() {
		sp.SetInt("paths_charged", 42)
		sp.End()
	}()
	work()
}

// Clean: the span's work runs on a goroutine that ends it (the engine's
// streaming-eval pattern).
func goroutineEnd(tr *Trace) {
	sp := tr.Start("eval")
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer sp.End()
		work()
	}()
	<-done
}

// Clean: child spans are annotations on the parent, not transfers — the
// parent still needs its own defer, and has one.
func childSpan(tr *Trace) {
	sp := tr.Start("query")
	defer sp.End()
	child := sp.Start("parse")
	defer child.End()
}

// Clean: ownership transfer — the span is returned whole (the server's
// cursor root pattern: the completion path owns the End).
func transferReturn(tr *Trace) *Span {
	sp := tr.Start("query")
	return sp
}

// Clean: ownership transfer — the end capability escapes as a value.
func transferEndValue(tr *Trace) func() {
	sp := tr.Start("query")
	return sp.End
}

// Clean: ownership transfer — the span is passed to another call.
func transferArg(tr *Trace) {
	sp := tr.Start("query")
	sink(sp)
}

// Clean: direct hand-off of the fresh span as a call argument.
func transferDirectArg(tr *Trace) {
	sink(tr.Start("query"))
}

// Clean: ownership transfer — the span is stored in a struct the caller
// tears down.
func transferStruct(tr *Trace) *holder {
	sp := tr.Start("query")
	return &holder{root: sp}
}

// Clean: direct composite-literal placement counts as bound.
func transferDirectStruct(tr *Trace) *holder {
	return &holder{root: tr.Start("query")}
}

// Clean: conditional tracing into a pre-declared var, then deferred —
// the nil span's End is a no-op, so one defer covers both arms.
func conditional(tr *Trace, traced bool) {
	var root *Span
	if traced {
		root = tr.Start("query")
	}
	defer root.End()
	work()
}

// Suppressed: leak acknowledged with a reason.
func suppressed(tr *Trace) {
	//lint:ignore spanend fixture demonstrates an acknowledged open span
	sp := tr.Start("query")
	sp.SetInt("paths", 1)
}
