// Package a is a detorder fixture: map ranges feeding order-sensitive
// output are flagged; order-insensitive folds and the two blessed
// deterministic idioms (collect-then-sort, keyed writes) are not.
package a

import (
	"fmt"
	"sort"
)

// True positive: appended order leaks map iteration order.
func bad(m map[string]int) []string {
	var out []string
	for k := range m { // want `appends to a slice`
		out = append(out, k)
	}
	return out
}

// Clean: collect-then-sort — the slice is sorted after the loop.
func collectThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Clean: keyed writes — each key owns its slot, visit order is
// unobservable.
func keyed(m map[string][]int) map[string][]int {
	out := make(map[string][]int)
	for k, vs := range m {
		out[k] = append(out[k], vs...)
	}
	return out
}

// Clean: an order-insensitive fold.
func fold(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// True positive: printed order leaks map iteration order.
func prints(m map[string]int) {
	for k := range m { // want `prints via fmt.Println`
		fmt.Println(k)
	}
}

// True positive: concatenation order leaks map iteration order.
func concat(m map[string]int) string {
	s := ""
	for k := range m { // want `concatenates into a string`
		s += k
	}
	return s
}

// Suppressed: order-insensitivity holds for an out-of-band reason.
func suppressed(m map[string]int) []string {
	var out []string
	//lint:ignore detorder the collected values are all cancelled; order unobservable
	for k := range m {
		out = append(out, k)
	}
	return out
}
