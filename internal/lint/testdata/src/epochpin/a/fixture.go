// Package a is an epochpin fixture: Store/Snapshot mirror the graph
// store's pinning API.
package a

type Graph struct{}

type Snapshot struct{}

func (s *Snapshot) Release()      {}
func (s *Snapshot) Graph() *Graph { return nil }

type Store struct{}

func (s *Store) Snapshot() *Snapshot { return &Snapshot{} }

func use(g *Graph)       {}
func count(g *Graph) int { return 0 }

// True positive: the handle is dropped on the floor.
func dropped(st *Store) {
	st.Snapshot() // want `handle is dropped`
}

// True positive: the pin is never released.
func neverReleased(st *Store) *Graph {
	sn := st.Snapshot() // want `never released`
	return sn.Graph()
}

// True positive: released, but not deferred — an early return or panic
// between Snapshot and Release leaks the epoch.
func plainRelease(st *Store) {
	sn := st.Snapshot() // want `released without defer`
	use(sn.Graph())
	sn.Release()
}

// Clean: the canonical scoped pin.
func scoped(st *Store) int {
	sn := st.Snapshot()
	defer sn.Release()
	return count(sn.Graph())
}

// Clean: ownership transfer — the caller receives the release
// capability (the engine's pin() pattern).
func pinned(st *Store) (*Graph, func()) {
	sn := st.Snapshot()
	return sn.Graph(), sn.Release
}

// True positive: the graph outlives its function-scoped pin.
func escape(st *Store) *Graph {
	sn := st.Snapshot()
	defer sn.Release()
	g := sn.Graph()
	return g // want `escapes its pin scope`
}

// Suppressed: leak acknowledged with a reason.
func suppressed(st *Store) *Graph {
	//lint:ignore epochpin fixture demonstrates an acknowledged leak
	sn := st.Snapshot()
	return sn.Graph()
}
