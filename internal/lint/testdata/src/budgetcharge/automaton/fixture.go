// Package automaton is a budgetcharge fixture. Its import path ends in
// /automaton so the analyzer audits it; the types below mirror the
// engine's shapes (Graph adjacency, Budget, RefSet, Set, Ref, StateID)
// just closely enough for the name-based matching to engage.
package automaton

type NodeID int
type EdgeID int
type StateID int
type SymbolID int
type Ref int

type Graph struct{}

func (g *Graph) Out(n NodeID) []EdgeID                       { return nil }
func (g *Graph) OutWithSymbol(n NodeID, s SymbolID) []EdgeID { return nil }

type Budget struct{}

func (b *Budget) ChargeWork(n int) bool { return true }
func (b *Budget) ChargePath(n int) bool { return true }

type RefSet struct{}

func (s *RefSet) Add(r Ref) bool { return true }

type Set struct{}

func (s *Set) Add(p int) bool      { return true }
func (s *Set) AddArena(r Ref) bool { return true }

type searchItem struct {
	ref   Ref
	state StateID
}

// True positive: a visited mark inside a loop with no ChargeWork.
func unchargedMark(bud *Budget, visited *RefSet, frontier []Ref) {
	for range frontier {
		visited.Add(0) // want `visited-set mark is not budget-charged`
	}
}

// Clean: the mark's innermost loop charges work.
func chargedMark(bud *Budget, visited *RefSet, frontier []Ref) {
	for range frontier {
		if visited.Add(0) {
			if !bud.ChargeWork(1) {
				return
			}
		}
	}
}

// True positive: a frontier push inside a loop with no charge at all.
func unchargedPush(bud *Budget, frontier []Ref) []searchItem {
	var next []searchItem
	for _, r := range frontier {
		next = append(next, searchItem{ref: r}) // want `frontier push is not budget-charged`
	}
	return next
}

// Clean: pushes accept ChargePath as well as ChargeWork.
func chargedPush(bud *Budget, frontier []Ref) []searchItem {
	var next []searchItem
	for _, r := range frontier {
		next = append(next, searchItem{ref: r})
		if !bud.ChargePath(1) {
			return next
		}
	}
	return next
}

// True positive: a loop-free admission must still be charged somewhere
// in the function (the empty-word seed-path bug shape).
func seedAdmit(bud *Budget, set *Set) {
	set.Add(0) // want `result admission \(Add\) is not budget-charged`
}

// Clean: the loop-free admission is charged at function scope.
func seedAdmitCharged(bud *Budget, set *Set) {
	if set.Add(0) {
		bud.ChargePath(0)
	}
}

// Clean: loop-free marks are bounded seeding, exempt by design.
func seedMark(bud *Budget, visited *RefSet) {
	visited.Add(0)
}

// True positive: adjacency iteration with no Budget in scope.
func unbudgetedScan(g *Graph, n NodeID) int {
	total := 0
	for _, e := range g.Out(n) { // want `no core.Budget is in scope`
		total += int(e)
	}
	return total
}

// Suppressed: same shape, annotated with the reason accounting is the
// caller's job.
func suppressedScan(g *Graph, n NodeID) int {
	total := 0
	//lint:ignore budgetcharge pure adjacency helper: the caller charges per extension
	for _, e := range g.Out(n) {
		total += int(e)
	}
	return total
}
