// Package a is an errsentinel fixture: matching error message text is
// flagged; errors.Is against a sentinel is the blessed form.
package a

import (
	"errors"
	"strings"
)

var errBoom = errors.New("boom")

// True positive: equality on message text.
func byText(err error) bool {
	return err.Error() == "boom" // want `comparing error message text`
}

// True positive: substring match on message text.
func byContains(err error) bool {
	return strings.Contains(err.Error(), "boom") // want `matching error message text with strings.Contains`
}

// True positive either way around.
func byTextReversed(err error) bool {
	return "boom" != err.Error() // want `comparing error message text`
}

// Clean: the typed-sentinel form.
func byIs(err error) bool {
	return errors.Is(err, errBoom)
}

// Clean: strings.Contains on non-error text.
func plainContains(s string) bool {
	return strings.Contains(s, "boom")
}

// Suppressed: a third-party error with no sentinel to match.
func suppressed(err error) bool {
	//lint:ignore errsentinel upstream library exposes no sentinel for this failure
	return err.Error() == "boom"
}
