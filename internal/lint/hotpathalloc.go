package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc statically enforces the allocation discipline of
// functions annotated `//pathalgebra:hotpath`: the evaluation inner
// loops' leaf helpers (CSR accessors, arena ops, budget charges,
// transition scans) must not introduce per-call heap allocations — the
// property scripts/check_allocs.sh gates dynamically, made reviewable
// at the call-site level.
//
// Flagged constructs inside annotated functions:
//
//   - string concatenation (+ / += on strings) — builds a new string;
//   - calls into package fmt — allocate for formatting and box their
//     variadic arguments;
//   - map and slice composite literals, make, and new;
//   - function literals — closures capture by reference and escape;
//   - interface boxing: passing, assigning or returning a concrete
//     non-pointer-shaped value where an interface is expected (pointer,
//     map, chan and func values fit an interface word without
//     allocating and are allowed).
//
// append is deliberately NOT flagged: the hot paths append into reused
// scratch buffers (arena entries, frontier slices), which is the
// architecture's amortized-zero pattern, not a per-call allocation.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "functions annotated //pathalgebra:hotpath must not allocate: no string concat, " +
		"fmt calls, map/slice literals, make/new, closures or interface boxing",
	Run: runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !HasHotpathDirective(fn) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Info
	isString := func(e ast.Expr) bool {
		t := pass.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(n.X) {
				pass.Reportf(n.OpPos, "string concatenation allocates in hot path %s", fn.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(n.Lhs[0]) {
				pass.Reportf(n.TokPos, "string concatenation allocates in hot path %s", fn.Name.Name)
			}
			checkBoxingAssign(pass, fn, n)
		case *ast.CallExpr:
			checkHotCall(pass, fn, n)
		case *ast.CompositeLit:
			t := pass.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in hot path %s", fn.Name.Name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in hot path %s", fn.Name.Name)
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal allocates (closure) in hot path %s", fn.Name.Name)
			return false
		case *ast.ReturnStmt:
			checkBoxingReturn(pass, fn, n)
		}
		return true
	})
	_ = info
}

// checkHotCall flags fmt calls, make/new, and boxing call arguments.
func checkHotCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	if name, ok := pkgFuncCall(pass.Info, call, "fmt"); ok {
		pass.Reportf(call.Pos(), "fmt.%s allocates in hot path %s", name, fn.Name.Name)
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if obj := pass.Info.Uses[id]; obj != nil {
			if b, isBuiltin := obj.(*types.Builtin); isBuiltin {
				switch b.Name() {
				case "make":
					pass.Reportf(call.Pos(), "make allocates in hot path %s", fn.Name.Name)
				case "new":
					pass.Reportf(call.Pos(), "new allocates in hot path %s", fn.Name.Name)
				}
				return
			}
		}
	}
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return // type conversion or untyped
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(pass.TypeOf(arg), pt) {
			pass.Reportf(arg.Pos(), "argument boxes a concrete value into interface %s in hot path %s", pt.String(), fn.Name.Name)
		}
	}
}

// checkBoxingAssign flags assignments that box into interface-typed
// destinations.
func checkBoxingAssign(pass *Pass, fn *ast.FuncDecl, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		var lt types.Type
		if as.Tok == token.DEFINE {
			continue // := infers the concrete type, no interface involved
		}
		lt = pass.TypeOf(as.Lhs[i])
		if boxes(pass.TypeOf(as.Rhs[i]), lt) {
			pass.Reportf(as.Rhs[i].Pos(), "assignment boxes a concrete value into interface %s in hot path %s", lt.String(), fn.Name.Name)
		}
	}
}

// checkBoxingReturn flags returns that box into interface results.
func checkBoxingReturn(pass *Pass, fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	if fn.Type.Results == nil {
		return
	}
	sig, ok := pass.TypeOf(fn.Name).(*types.Signature)
	if !ok {
		if obj := pass.Info.Defs[fn.Name]; obj != nil {
			sig, ok = obj.Type().(*types.Signature)
		}
		if !ok {
			return
		}
	}
	res := sig.Results()
	if len(ret.Results) != res.Len() {
		return
	}
	for i, r := range ret.Results {
		if boxes(pass.TypeOf(r), res.At(i).Type()) {
			pass.Reportf(r.Pos(), "return boxes a concrete value into interface %s in hot path %s", res.At(i).Type().String(), fn.Name.Name)
		}
	}
}

// boxes reports whether storing a value of type src into a destination
// of type dst converts a concrete, non-pointer-shaped value into an
// interface — the conversion that heap-allocates the value's copy.
func boxes(src, dst types.Type) bool {
	if src == nil || dst == nil {
		return false
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return false
	}
	switch u := src.Underlying().(type) {
	case *types.Interface:
		return false // interface-to-interface carries the existing box
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false // pointer-shaped: fits the interface word
	case *types.Basic:
		if u.Kind() == types.UntypedNil || u.Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}
