package lint

import (
	"go/ast"
	"go/types"
)

// EpochPin checks the epoch-pinning discipline around graph.Store: a
// Snapshot() pins an MVCC epoch, and the pin must be provably released —
// a leaked pin keeps dead epochs (and their COW overlays) alive forever.
//
// For every `sn := store.Snapshot()` (receiver type named Store) the
// analyzer accepts, in the enclosing function:
//
//   - defer sn.Release() — the canonical scoped pin;
//   - use of sn.Release as a value — ownership transfer of the release
//     capability (e.g. returning it as a cleanup func, the engine's
//     pin() pattern);
//   - sn returned, stored into a struct field / composite literal, or
//     passed to another call — ownership transfer of the whole handle
//     (the holder's Close/Release path owns the unpin).
//
// A plain, non-deferred sn.Release() call is flagged: an early return or
// panic between Snapshot and Release leaks the pin. A Snapshot whose
// result is discarded is always flagged.
//
// It additionally flags pinned-graph escape: when the pin is scoped to
// the function (defer sn.Release()), a value obtained from sn.Graph()
// must not be returned — after the function returns, the epoch may be
// compacted or freed under the escaping reference.
var EpochPin = &Analyzer{
	Name: "epochpin",
	Doc: "every graph.Store.Snapshot pin must be released on all paths: " +
		"defer Release, or transfer ownership of the handle; pinned graphs must not outlive their pin",
	Run: runEpochPin,
}

func runEpochPin(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkEpochPins(pass, fn)
			}
		}
	}
	return nil
}

func checkEpochPins(pass *Pass, fn *ast.FuncDecl) {
	var pins []*ast.Ident
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method, ok := methodCall(pass.Info, call)
		if !ok || method != "Snapshot" || recv != "Store" {
			return true
		}
		id, bound := snapshotBinding(fn.Body, call)
		if !bound {
			pass.Reportf(call.Pos(), "Store.Snapshot pins an epoch but the handle is dropped; the pin can never be released")
			return true
		}
		if id != nil {
			pins = append(pins, id)
		}
		return true
	})

	for _, id := range pins {
		def := pass.Info.Defs[id]
		if def == nil {
			continue
		}
		u := pinUsage{pass: pass, def: def}
		u.scan(fn.Body, id)
		switch {
		case u.deferred:
			u.checkGraphEscape(fn, id)
		case u.transferred:
			// Ownership moved; the holder releases.
		case u.plainRelease:
			pass.Reportf(id.Pos(), "pin %s is released without defer: an early return or panic between Snapshot and Release leaks the epoch; use defer %s.Release() or transfer ownership", id.Name, id.Name)
		default:
			pass.Reportf(id.Pos(), "pin %s is never released: defer %s.Release() or transfer ownership of the handle", id.Name, id.Name)
		}
	}
}

// pinUsage classifies how one Snapshot handle is used in a function.
type pinUsage struct {
	pass *Pass
	def  types.Object

	deferred, transferred, plainRelease bool
	graphCalls                          map[ast.Expr]bool // sn.Graph() call sites
}

// usesVar reports whether e is an identifier use of the pin variable.
func (u *pinUsage) usesVar(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && u.pass.Info.Uses[id] == u.def
}

// releaseValue reports whether e is `sn.Release` (the method value).
func (u *pinUsage) releaseValue(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	return ok && u.usesVar(sel.X) && sel.Sel.Name == "Release"
}

func (u *pinUsage) scan(body *ast.BlockStmt, id *ast.Ident) {
	u.graphCalls = make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if u.releaseValue(n.Call.Fun) {
				u.deferred = true
				return false
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && u.usesVar(sel.X) {
				switch sel.Sel.Name {
				case "Release":
					u.plainRelease = true
				case "Graph":
					u.graphCalls[n] = true
				}
				return true
			}
			for _, arg := range n.Args {
				if u.usesVar(arg) || u.releaseValue(arg) {
					u.transferred = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if u.usesVar(r) || u.releaseValue(r) {
					u.transferred = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				if u.releaseValue(r) {
					u.transferred = true
				}
				if u.usesVar(r) && !definesIdent(n, id) {
					u.transferred = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if u.usesVar(e) || u.releaseValue(e) {
					u.transferred = true
				}
			}
		}
		return true
	})
}

// checkGraphEscape flags returns of sn.Graph()-derived values when the
// pin is function-scoped (Release deferred here).
func (u *pinUsage) checkGraphEscape(fn *ast.FuncDecl, id *ast.Ident) {
	// Local variables assigned from sn.Graph().
	graphObjs := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, r := range as.Rhs {
			if !u.graphCalls[r] || i >= len(as.Lhs) {
				continue
			}
			if li, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := u.pass.Info.Defs[li]; obj != nil {
					graphObjs[obj] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			escapes := u.graphCalls[r]
			if ri, ok := r.(*ast.Ident); ok && graphObjs[u.pass.Info.Uses[ri]] {
				escapes = true
			}
			if escapes {
				u.pass.Reportf(r.Pos(), "graph of pin %s escapes its pin scope: Release is deferred in this function, so the returned graph may be compacted under the caller", id.Name)
			}
		}
		return true
	})
}

// definesIdent reports whether assign's LHS contains exactly id (its
// defining := statement).
func definesIdent(assign *ast.AssignStmt, id *ast.Ident) bool {
	for _, l := range assign.Lhs {
		if li, ok := l.(*ast.Ident); ok && li == id {
			return true
		}
	}
	return false
}

// snapshotBinding locates how call's result is bound: the defining
// identifier (nil for _), and bound=false when the result is dropped as
// a bare expression statement. A Snapshot returned or passed along
// directly counts as bound (ownership transfer).
func snapshotBinding(body *ast.BlockStmt, call *ast.CallExpr) (id *ast.Ident, bound bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				if r == call && i < len(n.Lhs) {
					bound = true
					if li, ok := n.Lhs[i].(*ast.Ident); ok && li.Name != "_" {
						id = li
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if v == call && i < len(n.Names) {
					bound = true
					if n.Names[i].Name != "_" {
						id = n.Names[i]
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if r == call {
					bound = true
				}
			}
		case *ast.CallExpr:
			if n == call {
				return true
			}
			for _, a := range n.Args {
				if a == call {
					bound = true
				}
			}
		case *ast.SelectorExpr:
			// store.Snapshot().Graph() chains: treat as dropped unless the
			// chain itself is bound — conservatively let the outer walk
			// decide; nothing to do here.
		}
		return true
	})
	return id, bound
}
