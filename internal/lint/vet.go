package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"
)

// The `go vet -vettool` driver: a stdlib reimplementation of the
// x/tools unitchecker protocol, so CI can run
//
//	go vet -vettool=$(which pathalgebravet) ./...
//
// and get build-cached, per-package incremental analysis. cmd/go probes
// the tool three ways and then invokes it once per package:
//
//   - `tool -V=full`      → print "name version ... buildID=<hash>"
//     (content-addressed so rebuilding the tool invalidates vet caches);
//   - `tool -flags`       → print a JSON array of supported flags;
//   - `tool <pkg>.cfg`    → analyze one package described by the JSON
//     config: file list, import map, and compiled export data for every
//     dependency. Diagnostics go to stderr; exit status 2 reports
//     findings, 1 reports tool failure, 0 success.
//
// Dependencies are visited first with VetxOnly=true to produce analysis
// facts; this suite uses no cross-package facts, so those invocations
// just write an empty facts file and return.

// vetConfig mirrors the JSON config cmd/go writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetMain implements the vettool protocol for args (os.Args[1:]). It
// returns the process exit code; handled==false means args do not look
// like a vettool invocation and the caller should run standalone mode.
func VetMain(args []string, analyzers []*Analyzer) (code int, handled bool) {
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			fmt.Printf("%s version devel comments-go-here buildID=%s\n", progName(), selfID())
			return 0, true
		case a == "-flags" || a == "--flags":
			fmt.Println("[]")
			return 0, true
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return vetCheck(args[0], analyzers), true
	}
	return 0, false
}

func progName() string {
	name := os.Args[0]
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return strings.TrimSuffix(name, ".exe")
}

// selfID hashes the executable, giving cmd/go a content-based tool
// identity for its vet result cache.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

func vetCheck(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: reading config: %v\n", progName(), err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "%s: parsing %s: %v\n", progName(), cfgPath, err)
		return 1
	}
	// Always produce the facts output cmd/go expects, even when empty:
	// it is the cached artifact that marks this package as vetted.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "%s: writing facts: %v\n", progName(), err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency visit: no facts to compute, nothing to report
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", progName(), err)
			return 1
		}
		files = append(files, f)
	}
	imp := NewExportImporter(fset, func(path string) (string, bool) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	tpkg, info, err := Typecheck(fset, cfg.ImportPath, cfg.GoVersion, files, imp)
	if err != nil || tpkg == nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "%s: type-checking %s: %v\n", progName(), cfg.ImportPath, err)
		return 1
	}
	diags, err := Run(&Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progName(), err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
