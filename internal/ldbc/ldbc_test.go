package ldbc

import (
	"testing"

	"pathalgebra/internal/graph"
)

func TestFigure1Shape(t *testing.T) {
	g := Figure1()
	if g.NumNodes() != 7 {
		t.Errorf("nodes = %d, want 7 (n1..n7)", g.NumNodes())
	}
	if g.NumEdges() != 11 {
		t.Errorf("edges = %d, want 11 (e1..e11)", g.NumEdges())
	}
	if got := len(g.NodesWithLabel(LabelPerson)); got != 4 {
		t.Errorf("persons = %d, want 4", got)
	}
	if got := len(g.NodesWithLabel(LabelMessage)); got != 3 {
		t.Errorf("messages = %d, want 3", got)
	}
	if got := len(g.EdgesWithLabel(LabelKnows)); got != 4 {
		t.Errorf("Knows edges = %d, want 4", got)
	}
	if got := len(g.EdgesWithLabel(LabelLikes)); got != 4 {
		t.Errorf("Likes edges = %d, want 4", got)
	}
	if got := len(g.EdgesWithLabel(LabelHasCreator)); got != 3 {
		t.Errorf("Has_creator edges = %d, want 3", got)
	}
}

func TestFigure1Names(t *testing.T) {
	g := Figure1()
	for key, name := range map[string]string{
		"n1": "Moe", "n2": "Homer", "n3": "Lisa", "n4": "Apu",
	} {
		n, ok := g.NodeByKey(key)
		if !ok {
			t.Fatalf("node %s missing", key)
		}
		if got := g.NodeProp(n.ID, "name"); got.Str() != name {
			t.Errorf("%s name = %v, want %s", key, got, name)
		}
	}
}

// TestFigure1InnerCycle pins the Knows subgraph dictated by Table 3:
// e1: n1→n2, e2: n2→n3, e3: n3→n2, e4: n2→n4.
func TestFigure1InnerCycle(t *testing.T) {
	g := Figure1()
	want := map[string][2]string{
		"e1": {"n1", "n2"},
		"e2": {"n2", "n3"},
		"e3": {"n3", "n2"},
		"e4": {"n2", "n4"},
	}
	for key, ends := range want {
		e, ok := g.EdgeByKey(key)
		if !ok {
			t.Fatalf("edge %s missing", key)
		}
		if e.Label != LabelKnows {
			t.Errorf("%s label = %q, want Knows", key, e.Label)
		}
		src, dst := g.Endpoints(e.ID)
		if g.Node(src).Key != ends[0] || g.Node(dst).Key != ends[1] {
			t.Errorf("%s = %s→%s, want %s→%s",
				key, g.Node(src).Key, g.Node(dst).Key, ends[0], ends[1])
		}
	}
}

// TestFigure1OuterCycle pins the Likes/Has_creator cycle of the intro:
// n1 -e8→ n6 -e11→ n3 -e7→ n7 -e10→ n4 -e9→ n5 -e6→ n1.
func TestFigure1OuterCycle(t *testing.T) {
	g := Figure1()
	hops := []struct{ edge, src, dst, label string }{
		{"e8", "n1", "n6", LabelLikes},
		{"e11", "n6", "n3", LabelHasCreator},
		{"e7", "n3", "n7", LabelLikes},
		{"e10", "n7", "n4", LabelHasCreator},
		{"e9", "n4", "n5", LabelLikes},
		{"e6", "n5", "n1", LabelHasCreator},
	}
	for _, h := range hops {
		e, ok := g.EdgeByKey(h.edge)
		if !ok {
			t.Fatalf("edge %s missing", h.edge)
		}
		src, dst := g.Endpoints(e.ID)
		if g.Node(src).Key != h.src || g.Node(dst).Key != h.dst || e.Label != h.label {
			t.Errorf("%s = %s -%s→ %s, want %s -%s→ %s",
				h.edge, g.Node(src).Key, e.Label, g.Node(dst).Key, h.src, h.label, h.dst)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	g1 := MustGenerate(cfg)
	g2 := MustGenerate(cfg)
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("generation is not deterministic for equal configs")
	}
	for i := 0; i < g1.NumEdges(); i++ {
		e1, e2 := g1.Edge(graph.EdgeID(i)), g2.Edge(graph.EdgeID(i))
		if e1.Src != e2.Src || e1.Dst != e2.Dst || e1.Label != e2.Label {
			t.Fatalf("edge %d differs between runs", i)
		}
	}
	g3 := MustGenerate(Config{Persons: cfg.Persons, Messages: cfg.Messages,
		KnowsPerPerson: cfg.KnowsPerPerson, LikesPerPerson: cfg.LikesPerPerson,
		CycleFraction: cfg.CycleFraction, Seed: cfg.Seed + 1})
	same := g3.NumEdges() == g1.NumEdges()
	if same {
		diff := false
		for i := 0; i < g1.NumEdges(); i++ {
			if g1.Edge(graph.EdgeID(i)).Dst != g3.Edge(graph.EdgeID(i)).Dst {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestGenerateSchema(t *testing.T) {
	g := MustGenerate(Config{
		Persons: 20, Messages: 30, KnowsPerPerson: 3, LikesPerPerson: 2,
		CycleFraction: 0.5, Seed: 13,
	})
	if got := len(g.NodesWithLabel(LabelPerson)); got != 20 {
		t.Errorf("persons = %d, want 20", got)
	}
	if got := len(g.NodesWithLabel(LabelMessage)); got != 30 {
		t.Errorf("messages = %d, want 30", got)
	}
	// Every message has exactly one Has_creator edge (LDBC SNB invariant).
	if got := len(g.EdgesWithLabel(LabelHasCreator)); got != 30 {
		t.Errorf("Has_creator edges = %d, want 30", got)
	}
	for _, id := range g.NodesWithLabel(LabelMessage) {
		creators := 0
		for _, e := range g.Out(id) {
			if g.EdgeLabel(e) == LabelHasCreator {
				creators++
			}
		}
		if creators != 1 {
			t.Errorf("message %s has %d creators, want 1", g.Node(id).Key, creators)
		}
	}
	// Knows edges connect persons only; Likes go person→message.
	for _, e := range g.EdgesWithLabel(LabelKnows) {
		src, dst := g.Endpoints(e)
		if g.NodeLabel(src) != LabelPerson || g.NodeLabel(dst) != LabelPerson {
			t.Errorf("Knows edge %s connects non-persons", g.Edge(e).Key)
		}
	}
	for _, e := range g.EdgesWithLabel(LabelLikes) {
		src, dst := g.Endpoints(e)
		if g.NodeLabel(src) != LabelPerson || g.NodeLabel(dst) != LabelMessage {
			t.Errorf("Likes edge %s has wrong endpoint labels", g.Edge(e).Key)
		}
	}
}

func TestGenerateRing(t *testing.T) {
	// CycleFraction 1 with degree 1 yields a pure person ring.
	g := MustGenerate(Config{Persons: 10, KnowsPerPerson: 1, CycleFraction: 1, Seed: 1})
	if got := len(g.EdgesWithLabel(LabelKnows)); got != 10 {
		t.Fatalf("ring edges = %d, want 10", got)
	}
	for _, id := range g.NodesWithLabel(LabelPerson) {
		if len(g.Out(id)) != 1 || len(g.In(id)) != 1 {
			t.Errorf("ring node %s has degree out=%d in=%d, want 1/1",
				g.Node(id).Key, len(g.Out(id)), len(g.In(id)))
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := []Config{
		{Persons: 0},
		{Persons: 5, Messages: -1},
		{Persons: 5, KnowsPerPerson: -2},
		{Persons: 5, LikesPerPerson: -2},
		{Persons: 5, CycleFraction: 1.5},
		{Persons: 5, CycleFraction: -0.1},
	}
	for _, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("Generate(%+v) succeeded, want error", cfg)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate should panic on invalid config")
		}
	}()
	MustGenerate(Config{Persons: -1})
}
