// Package ldbc provides the graph workloads of the paper: the exact social
// network snippet of Figure 1 (drawn from the LDBC Social Network
// Benchmark) used by every worked example, and a parameterized synthetic
// generator with the same schema (Person/Message nodes; Knows, Likes and
// Has_Creator edges) for benchmarking at larger scales.
package ldbc

import (
	"fmt"
	"math/rand"

	"pathalgebra/internal/graph"
)

// Label constants of the Figure 1 schema.
const (
	LabelPerson     = "Person"
	LabelMessage    = "Message"
	LabelKnows      = "Knows"
	LabelLikes      = "Likes"
	LabelHasCreator = "Has_creator"
)

// Figure1 builds the property graph of Figure 1 of the paper.
//
// The paper shows the graph only as a picture, but its structure is fully
// determined by the worked examples:
//
//   - The Knows subgraph (inner cycle) is fixed by Table 3's path listing:
//     e1: n1→n2, e2: n2→n3, e3: n3→n2, e4: n2→n4, with the n2⇄n3 cycle.
//   - The outer Likes/Has_creator cycle is fixed by the introduction's
//     path2 = (n1, e8, n6, e11, n3, e7, n7, e10, n4) and by the statement
//     that Likes·Has_creator forms a cycle through n1 and n4, which forces
//     e9: n4→n5 (Likes) and e6: n5→n1 (Has_creator).
//   - n1 is the Person "Moe" and n4 the Person "Apu" (§1); "Lisa" appears
//     as a Person name in §3.1, assigned here to n3.
//
// One edge identifier, e5, is not pinned down by any example; we assign it
// as a Likes edge n2→n6, which cannot affect any of the paper's worked
// results (all of which either start at n1/n4 or concern the Knows
// subgraph only). This reconstruction choice is also recorded in DESIGN.md.
func Figure1() *graph.Graph {
	b := graph.NewBuilder()
	b.AddNode("n1", LabelPerson, graph.Props("name", "Moe"))
	b.AddNode("n2", LabelPerson, graph.Props("name", "Homer"))
	b.AddNode("n3", LabelPerson, graph.Props("name", "Lisa"))
	b.AddNode("n4", LabelPerson, graph.Props("name", "Apu"))
	b.AddNode("n5", LabelMessage, graph.Props("content", "I like donuts"))
	b.AddNode("n6", LabelMessage, graph.Props("content", "Hi there"))
	b.AddNode("n7", LabelMessage, graph.Props("content", "Saxophone!"))

	b.AddEdge("e1", "n1", "n2", LabelKnows, nil)
	b.AddEdge("e2", "n2", "n3", LabelKnows, nil)
	b.AddEdge("e3", "n3", "n2", LabelKnows, nil)
	b.AddEdge("e4", "n2", "n4", LabelKnows, nil)
	b.AddEdge("e5", "n2", "n6", LabelLikes, nil)
	b.AddEdge("e6", "n5", "n1", LabelHasCreator, nil)
	b.AddEdge("e7", "n3", "n7", LabelLikes, nil)
	b.AddEdge("e8", "n1", "n6", LabelLikes, nil)
	b.AddEdge("e9", "n4", "n5", LabelLikes, nil)
	b.AddEdge("e10", "n7", "n4", LabelHasCreator, nil)
	b.AddEdge("e11", "n6", "n3", LabelHasCreator, nil)
	return b.MustBuild()
}

// Config parameterizes the synthetic SNB-like generator.
type Config struct {
	// Persons is the number of Person nodes (≥ 1).
	Persons int
	// Messages is the number of Message nodes.
	Messages int
	// KnowsPerPerson is the average out-degree of Knows edges.
	KnowsPerPerson int
	// LikesPerPerson is the average number of Likes edges per person.
	LikesPerPerson int
	// CycleFraction in [0,1] biases Knows edges toward a ring structure,
	// controlling cycle density: 1 yields a pure person-ring (maximally
	// cyclic recursion), 0 yields uniform random endpoints.
	CycleFraction float64
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultConfig returns a small, moderately cyclic workload.
func DefaultConfig() Config {
	return Config{
		Persons:        100,
		Messages:       200,
		KnowsPerPerson: 3,
		LikesPerPerson: 2,
		CycleFraction:  0.3,
		Seed:           1,
	}
}

var firstNames = []string{
	"Moe", "Homer", "Lisa", "Apu", "Marge", "Bart", "Ned", "Seymour",
	"Edna", "Milhouse", "Ralph", "Nelson", "Barney", "Carl", "Lenny",
}

// Generate builds a synthetic property graph with the Figure 1 schema:
// every Message has exactly one Has_creator edge to a Person (as in LDBC
// SNB), persons Know other persons and Like messages. Generation is
// deterministic for a given Config.
func Generate(cfg Config) (*graph.Graph, error) {
	if cfg.Persons < 1 {
		return nil, fmt.Errorf("ldbc: Config.Persons must be >= 1, got %d", cfg.Persons)
	}
	if cfg.Messages < 0 || cfg.KnowsPerPerson < 0 || cfg.LikesPerPerson < 0 {
		return nil, fmt.Errorf("ldbc: negative counts in config %+v", cfg)
	}
	if cfg.CycleFraction < 0 || cfg.CycleFraction > 1 {
		return nil, fmt.Errorf("ldbc: CycleFraction must be in [0,1], got %g", cfg.CycleFraction)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder()

	personKeys := make([]string, cfg.Persons)
	for i := 0; i < cfg.Persons; i++ {
		key := fmt.Sprintf("p%d", i+1)
		personKeys[i] = key
		name := fmt.Sprintf("%s_%d", firstNames[i%len(firstNames)], i+1)
		b.AddNode(key, LabelPerson, graph.Props("name", name, "id", int64(i+1)))
	}
	messageKeys := make([]string, cfg.Messages)
	for i := 0; i < cfg.Messages; i++ {
		key := fmt.Sprintf("m%d", i+1)
		messageKeys[i] = key
		b.AddNode(key, LabelMessage, graph.Props("content", fmt.Sprintf("message %d", i+1), "id", int64(i+1)))
	}

	edgeSeq := 0
	nextEdgeKey := func() string {
		edgeSeq++
		return fmt.Sprintf("k%d", edgeSeq)
	}

	// Knows: a ring fraction for guaranteed cycles plus random edges.
	type pair struct{ a, b int }
	seen := make(map[pair]bool)
	addKnows := func(src, dst int) {
		if src == dst || seen[pair{src, dst}] {
			return
		}
		seen[pair{src, dst}] = true
		b.AddEdge(nextEdgeKey(), personKeys[src], personKeys[dst], LabelKnows, nil)
	}
	totalKnows := cfg.Persons * cfg.KnowsPerPerson
	ringEdges := int(float64(totalKnows) * cfg.CycleFraction)
	if cfg.Persons > 1 {
		for i := 0; i < ringEdges; i++ {
			src := i % cfg.Persons
			addKnows(src, (src+1)%cfg.Persons)
		}
		for i := ringEdges; i < totalKnows; i++ {
			addKnows(rng.Intn(cfg.Persons), rng.Intn(cfg.Persons))
		}
	}

	// Has_creator: exactly one creator per message.
	for i := 0; i < cfg.Messages; i++ {
		creator := personKeys[rng.Intn(cfg.Persons)]
		b.AddEdge(nextEdgeKey(), messageKeys[i], creator, LabelHasCreator, nil)
	}

	// Likes: persons like random messages.
	if cfg.Messages > 0 {
		likeSeen := make(map[pair]bool)
		total := cfg.Persons * cfg.LikesPerPerson
		for i := 0; i < total; i++ {
			p := rng.Intn(cfg.Persons)
			m := rng.Intn(cfg.Messages)
			if likeSeen[pair{p, m}] {
				continue
			}
			likeSeen[pair{p, m}] = true
			b.AddEdge(nextEdgeKey(), personKeys[p], messageKeys[m], LabelLikes, nil)
		}
	}

	return b.Build()
}

// MustGenerate is Generate panicking on error, for benchmarks.
func MustGenerate(cfg Config) *graph.Graph {
	g, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return g
}
