package ldbc

import (
	"reflect"
	"testing"

	"pathalgebra/internal/graph"
)

// TestUpdateStreamDeterministic: equal configs generate identical
// streams; different seeds diverge.
func TestUpdateStreamDeterministic(t *testing.T) {
	cfg := DefaultUpdateConfig()
	a := MustUpdateStream(cfg)
	b := MustUpdateStream(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config generated different streams")
	}
	cfg.Seed = 99
	c := MustUpdateStream(cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical streams")
	}
}

// TestUpdateStreamApplies: every batch applies cleanly in order against
// the matching base graph, and the interleave actually contains both op
// kinds with cross-referencing endpoints.
func TestUpdateStreamApplies(t *testing.T) {
	base := MustGenerate(DefaultConfig())
	cfg := DefaultUpdateConfig()
	stream := MustUpdateStream(cfg)
	if len(stream) != cfg.Batches {
		t.Fatalf("len(stream) = %d, want %d", len(stream), cfg.Batches)
	}

	s := graph.NewStore(base, graph.StoreOptions{CompactThreshold: -1})
	defer s.Close()
	persons, knows := 0, 0
	usesStreamPerson := false
	for bi, b := range stream {
		if len(b.Ops) != cfg.OpsPerBatch {
			t.Fatalf("batch %d has %d ops, want %d", bi, len(b.Ops), cfg.OpsPerBatch)
		}
		for _, op := range b.Ops {
			switch op.Kind {
			case graph.OpAddNode:
				persons++
			case graph.OpAddEdge:
				knows++
				if op.Label != LabelKnows {
					t.Fatalf("edge op label = %q", op.Label)
				}
				if op.Src[0] == 'u' || op.Dst[0] == 'u' {
					usesStreamPerson = true
				}
			default:
				t.Fatalf("unexpected op kind %v in insert stream", op.Kind)
			}
		}
		if _, err := s.Apply(b); err != nil {
			t.Fatalf("batch %d failed to apply: %v", bi, err)
		}
	}
	if persons == 0 || knows == 0 {
		t.Fatalf("stream not interleaved: %d persons, %d knows", persons, knows)
	}
	if !usesStreamPerson {
		t.Fatal("no knows edge references a stream-inserted person")
	}
	g := s.Graph()
	if g.LiveNodes() != base.LiveNodes()+persons || g.LiveEdges() != base.LiveEdges()+knows {
		t.Fatalf("live counts %d/%d after stream, want %d/%d",
			g.LiveNodes(), g.LiveEdges(), base.LiveNodes()+persons, base.LiveEdges()+knows)
	}

	// PersonFraction 0 must still terminate (forced person inserts when
	// the pair space saturates).
	tiny := UpdateConfig{Batches: 2, OpsPerBatch: 8, ExistingPersons: 2, PersonFraction: 0, Seed: 3}
	if got := MustUpdateStream(tiny); len(got) != 2 {
		t.Fatalf("tiny stream len = %d", len(got))
	}
}
