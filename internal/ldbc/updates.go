package ldbc

import (
	"fmt"
	"math/rand"

	"pathalgebra/internal/graph"
)

// UpdateConfig parameterizes the deterministic update-stream generator:
// an LDBC-SNB-style insert stream of new persons and knows edges,
// interleaved into batches for driving a live graph.Store.
type UpdateConfig struct {
	// Batches is the number of batches to generate (≥ 1).
	Batches int
	// OpsPerBatch is the number of operations per batch (≥ 1).
	OpsPerBatch int
	// ExistingPersons is how many p%d person keys the base graph already
	// holds (Config.Persons of the graph the stream will be applied to);
	// knows inserts may attach to them as well as to stream-inserted
	// persons.
	ExistingPersons int
	// PersonFraction in [0,1] is the probability an op inserts a person
	// rather than a knows edge; the remainder insert knows edges between
	// known persons. The first op of the stream is always a person insert
	// when ExistingPersons is 0 (an edge needs endpoints).
	PersonFraction float64
	// Seed makes the stream reproducible: equal configs generate
	// byte-identical streams.
	Seed int64
}

// DefaultUpdateConfig returns a small interleaved insert stream matching
// DefaultConfig's base graph.
func DefaultUpdateConfig() UpdateConfig {
	return UpdateConfig{
		Batches:         8,
		OpsPerBatch:     16,
		ExistingPersons: DefaultConfig().Persons,
		PersonFraction:  0.4,
		Seed:            1,
	}
}

// UpdateStream generates a deterministic sequence of insert batches:
// person inserts (keys "up1", "up2", ...) interleaved with knows-edge
// inserts (keys "uk1", "uk2", ...) whose endpoints are drawn from the
// base graph's p%d persons and the stream's own already-inserted ones.
// Later batches may reference persons inserted by earlier batches, and
// later ops within one batch may reference persons inserted earlier in
// the same batch — exercising both cross-batch and intra-batch
// visibility of a live store.
func UpdateStream(cfg UpdateConfig) ([]graph.Batch, error) {
	if cfg.Batches < 1 || cfg.OpsPerBatch < 1 {
		return nil, fmt.Errorf("ldbc: Batches and OpsPerBatch must be >= 1, got %d/%d", cfg.Batches, cfg.OpsPerBatch)
	}
	if cfg.ExistingPersons < 0 {
		return nil, fmt.Errorf("ldbc: ExistingPersons must be >= 0, got %d", cfg.ExistingPersons)
	}
	if cfg.PersonFraction < 0 || cfg.PersonFraction > 1 {
		return nil, fmt.Errorf("ldbc: PersonFraction must be in [0,1], got %g", cfg.PersonFraction)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// The endpoint pool: base persons first, stream persons appended as
	// they are inserted.
	pool := make([]string, 0, cfg.ExistingPersons+cfg.Batches*cfg.OpsPerBatch)
	for i := 0; i < cfg.ExistingPersons; i++ {
		pool = append(pool, fmt.Sprintf("p%d", i+1))
	}
	type pair struct{ a, b string }
	seen := make(map[pair]bool)

	personSeq, knowsSeq := 0, 0
	batches := make([]graph.Batch, cfg.Batches)
	for bi := range batches {
		ops := make([]graph.Op, 0, cfg.OpsPerBatch)
		misses := 0 // consecutive duplicate/self-loop draws
		for len(ops) < cfg.OpsPerBatch {
			// Force a person insert when edges are impossible (tiny pool)
			// or the pair space looks saturated, so the loop always
			// terminates even at PersonFraction 0.
			insertPerson := rng.Float64() < cfg.PersonFraction || len(pool) < 2 || misses > 16
			if insertPerson {
				misses = 0
				personSeq++
				key := fmt.Sprintf("up%d", personSeq)
				ops = append(ops, graph.Op{
					Kind:  graph.OpAddNode,
					Key:   key,
					Label: LabelPerson,
					Props: graph.Props("name", fmt.Sprintf("Update_%d", personSeq), "id", int64(1_000_000+personSeq)),
				})
				pool = append(pool, key)
				continue
			}
			src := pool[rng.Intn(len(pool))]
			dst := pool[rng.Intn(len(pool))]
			if src == dst || seen[pair{src, dst}] {
				misses++
				continue
			}
			misses = 0
			seen[pair{src, dst}] = true
			knowsSeq++
			ops = append(ops, graph.Op{
				Kind:  graph.OpAddEdge,
				Key:   fmt.Sprintf("uk%d", knowsSeq),
				Src:   src,
				Dst:   dst,
				Label: LabelKnows,
			})
		}
		batches[bi] = graph.Batch{Ops: ops}
	}
	return batches, nil
}

// MustUpdateStream is UpdateStream panicking on error, for tests and
// benchmarks.
func MustUpdateStream(cfg UpdateConfig) []graph.Batch {
	bs, err := UpdateStream(cfg)
	if err != nil {
		panic(err)
	}
	return bs
}
