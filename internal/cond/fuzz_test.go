package cond_test

import (
	"testing"

	"pathalgebra/internal/cond"
)

// FuzzParseCond asserts the selection-condition parser never panics:
// arbitrary input must yield either a condition or an error.
func FuzzParseCond(f *testing.F) {
	for _, seed := range []string{
		`label(edge(1)) = "Knows" AND first.name = "Moe"`,
		`len() <= 3 OR NOT (last.age > 30)`,
		`node(2).score >= 1.5`,
		`first.ok = true AND last.ok = false`,
		`NOT NOT NOT len() = 0`,
		`edge(999999999999999999999).x = 1`,
		`first.name = "\"escaped\""`,
		`len() < -1`,
		`(((len() = 1)))`,
		`label(first) != "A"`,
		`first.p = `,
		`"dangling`,
		`= = =`,
		`first..x = 1`,
		`len() = 1.2.3`,
		"\x00\x01\x02",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		_, _ = cond.Parse(input)
	})
}
