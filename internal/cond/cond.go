// Package cond implements selection conditions (§3.1 of the paper): the
// filter language of the σ operator. A simple condition compares a path
// accessor — label(node(i)), label(edge(i)), label(first), label(last),
// node(i).prop, edge(i).prop, first.prop, last.prop, or len() — against a
// constant. Complex conditions combine simple ones with AND, OR and NOT.
//
// Beyond the paper's equality-only definition, comparisons support the
// inequality operators the paper's footnote 1 anticipates (≠ < > ≤ ≥).
package cond

import (
	"fmt"

	"pathalgebra/internal/graph"
	"pathalgebra/internal/path"
)

// Cond is a selection condition evaluable over a path in a graph.
// Evaluation follows the paper's ev(c, p): accessors on out-of-range
// positions or undefined labels/properties yield no value, making any
// comparison on them false.
type Cond interface {
	// Eval reports whether the path satisfies the condition.
	Eval(g *graph.Graph, p path.Path) bool
	// String renders the condition in the paper's concrete syntax,
	// e.g. `label(edge(1)) = "Knows"`.
	String() string
}

// TargetKind selects which path position an accessor addresses.
type TargetKind uint8

const (
	// TargetFirst addresses Node(p, 1).
	TargetFirst TargetKind = iota
	// TargetLast addresses Node(p, Len(p)+1).
	TargetLast
	// TargetNode addresses Node(p, i) for an explicit 1-based i.
	TargetNode
	// TargetEdge addresses Edge(p, j) for an explicit 1-based j.
	TargetEdge
)

// Target identifies an object along the path: first, last, node(i) or
// edge(i).
type Target struct {
	Kind TargetKind
	Pos  int // 1-based; meaningful for TargetNode and TargetEdge
}

// First addresses the first node of the path.
func First() Target { return Target{Kind: TargetFirst} }

// Last addresses the last node of the path.
func Last() Target { return Target{Kind: TargetLast} }

// NodeAt addresses the i-th node (1-based).
func NodeAt(i int) Target { return Target{Kind: TargetNode, Pos: i} }

// EdgeAt addresses the i-th edge (1-based).
func EdgeAt(i int) Target { return Target{Kind: TargetEdge, Pos: i} }

// String renders the target in the paper's syntax.
func (t Target) String() string {
	switch t.Kind {
	case TargetFirst:
		return "first"
	case TargetLast:
		return "last"
	case TargetNode:
		return fmt.Sprintf("node(%d)", t.Pos)
	case TargetEdge:
		return fmt.Sprintf("edge(%d)", t.Pos)
	default:
		return "?"
	}
}

// resolve returns the addressed object as (nodeID, true, ok) or
// (edgeID, false, ok). ok is false when the position is out of range.
func (t Target) resolve(p path.Path) (n graph.NodeID, e graph.EdgeID, isNode, ok bool) {
	switch t.Kind {
	case TargetFirst:
		return p.First(), 0, true, true
	case TargetLast:
		return p.Last(), 0, true, true
	case TargetNode:
		id, inRange := p.Node(t.Pos)
		return id, 0, true, inRange
	case TargetEdge:
		id, inRange := p.Edge(t.Pos)
		return 0, id, false, inRange
	default:
		return 0, 0, false, false
	}
}

// Op is a comparison operator.
type Op uint8

const (
	// EQ is =.
	EQ Op = iota
	// NE is !=.
	NE
	// LT is <.
	LT
	// LE is <=.
	LE
	// GT is >.
	GT
	// GE is >=.
	GE
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return "?"
	}
}

func (o Op) apply(lhs, rhs graph.Value) bool {
	c, comparable := lhs.Compare(rhs)
	if !comparable {
		// NE on incomparable-but-present values is true (they differ);
		// everything else is false. Null never satisfies anything.
		if o == NE && !lhs.IsNull() && !rhs.IsNull() {
			return true
		}
		return false
	}
	switch o {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	case GE:
		return c >= 0
	default:
		return false
	}
}

// LabelCmp compares the label of a target against a constant:
// label(target) op value. This covers the paper's label(node(i)) = v,
// label(edge(i)) = v, label(first) = v and label(last) = v forms.
type LabelCmp struct {
	Target Target
	Op     Op
	Value  string
}

// Label builds the equality form label(target) = value.
func Label(t Target, value string) LabelCmp {
	return LabelCmp{Target: t, Op: EQ, Value: value}
}

// Eval implements Cond.
func (c LabelCmp) Eval(g *graph.Graph, p path.Path) bool {
	n, e, isNode, ok := c.Target.resolve(p)
	if !ok {
		return false
	}
	var l string
	if isNode {
		l = g.NodeLabel(n)
	} else {
		l = g.EdgeLabel(e)
	}
	if l == "" {
		// λ is partial: an unlabelled object satisfies no label condition.
		return false
	}
	return c.Op.apply(graph.StringValue(l), graph.StringValue(c.Value))
}

// String implements Cond.
func (c LabelCmp) String() string {
	return fmt.Sprintf("label(%s) %s %q", c.Target, c.Op, c.Value)
}

// PropCmp compares a property of a target against a constant:
// target.prop op value. This covers node(i).pr = v, edge(i).pr = v,
// first.pr = v and last.pr = v.
type PropCmp struct {
	Target Target
	Prop   string
	Op     Op
	Value  graph.Value
}

// Prop builds the equality form target.prop = value.
func Prop(t Target, prop string, value graph.Value) PropCmp {
	return PropCmp{Target: t, Prop: prop, Op: EQ, Value: value}
}

// Eval implements Cond.
func (c PropCmp) Eval(g *graph.Graph, p path.Path) bool {
	n, e, isNode, ok := c.Target.resolve(p)
	if !ok {
		return false
	}
	var v graph.Value
	if isNode {
		v = g.NodeProp(n, c.Prop)
	} else {
		v = g.EdgeProp(e, c.Prop)
	}
	return c.Op.apply(v, c.Value)
}

// String implements Cond.
func (c PropCmp) String() string {
	if c.Value.Kind == graph.KindString {
		return fmt.Sprintf("%s.%s %s %q", c.Target, c.Prop, c.Op, c.Value.Str())
	}
	return fmt.Sprintf("%s.%s %s %s", c.Target, c.Prop, c.Op, c.Value)
}

// LenCmp compares the path length against a constant: len() op k.
type LenCmp struct {
	Op Op
	K  int
}

// Len builds the equality form len() = k.
func Len(k int) LenCmp { return LenCmp{Op: EQ, K: k} }

// Eval implements Cond.
func (c LenCmp) Eval(_ *graph.Graph, p path.Path) bool {
	return c.Op.apply(graph.IntValue(int64(p.Len())), graph.IntValue(int64(c.K)))
}

// String implements Cond.
func (c LenCmp) String() string { return fmt.Sprintf("len() %s %d", c.Op, c.K) }

// And is the conjunction c1 ∧ c2.
type And struct{ L, R Cond }

// Eval implements Cond.
func (c And) Eval(g *graph.Graph, p path.Path) bool {
	return c.L.Eval(g, p) && c.R.Eval(g, p)
}

// String implements Cond.
func (c And) String() string { return fmt.Sprintf("(%s AND %s)", c.L, c.R) }

// Or is the disjunction c1 ∨ c2.
type Or struct{ L, R Cond }

// Eval implements Cond.
func (c Or) Eval(g *graph.Graph, p path.Path) bool {
	return c.L.Eval(g, p) || c.R.Eval(g, p)
}

// String implements Cond.
func (c Or) String() string { return fmt.Sprintf("(%s OR %s)", c.L, c.R) }

// Not is the negation ¬c.
type Not struct{ C Cond }

// Eval implements Cond.
func (c Not) Eval(g *graph.Graph, p path.Path) bool { return !c.C.Eval(g, p) }

// String implements Cond.
func (c Not) String() string { return fmt.Sprintf("NOT (%s)", c.C) }

// True is the always-true condition (useful as a neutral filter).
type True struct{}

// Eval implements Cond.
func (True) Eval(*graph.Graph, path.Path) bool { return true }

// String implements Cond.
func (True) String() string { return "true" }

// Conj folds a list of conditions into a right-nested conjunction.
// Conj() is True.
func Conj(cs ...Cond) Cond {
	switch len(cs) {
	case 0:
		return True{}
	case 1:
		return cs[0]
	default:
		return And{L: cs[0], R: Conj(cs[1:]...)}
	}
}

// MaxPosition returns the largest explicit node/edge position referenced by
// the condition, and whether the condition references the last node or the
// path length. The optimizer uses this to decide whether a selection can be
// pushed below a join (a condition touching only a prefix commutes with
// joins that extend the path on the right).
func MaxPosition(c Cond) (maxNode, maxEdge int, usesLastOrLen bool) {
	switch c := c.(type) {
	case LabelCmp:
		return targetPositions(c.Target)
	case PropCmp:
		return targetPositions(c.Target)
	case LenCmp:
		return 0, 0, true
	case And:
		return combinePositions(c.L, c.R)
	case Or:
		return combinePositions(c.L, c.R)
	case Not:
		return MaxPosition(c.C)
	default:
		return 0, 0, true // unknown condition: be conservative
	}
}

func targetPositions(t Target) (maxNode, maxEdge int, usesLastOrLen bool) {
	switch t.Kind {
	case TargetFirst:
		return 1, 0, false
	case TargetLast:
		return 0, 0, true
	case TargetNode:
		return t.Pos, 0, false
	case TargetEdge:
		return 0, t.Pos, false
	default:
		return 0, 0, true
	}
}

func combinePositions(l, r Cond) (maxNode, maxEdge int, usesLastOrLen bool) {
	ln, le, lu := MaxPosition(l)
	rn, re, ru := MaxPosition(r)
	return max(ln, rn), max(le, re), lu || ru
}
