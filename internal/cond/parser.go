package cond

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"pathalgebra/internal/graph"
)

// Parse parses a selection condition written in the paper's concrete
// syntax, e.g.
//
//	label(edge(1)) = "Knows" AND first.name = "Moe"
//	len() <= 3 OR NOT (last.age > 30)
//
// Keywords (AND, OR, NOT, first, last, node, edge, label, len, true,
// false) are case-insensitive. String literals use double quotes.
func Parse(input string) (Cond, error) {
	p := &condParser{lex: newCondLexer(input)}
	if err := p.lex.next(); err != nil {
		return nil, err
	}
	c, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.lex.tok.kind != tokEOF {
		return nil, fmt.Errorf("cond: unexpected %q after condition", p.lex.tok.text)
	}
	return c, nil
}

// MustParse is Parse panicking on error, for fixtures and examples.
func MustParse(input string) Cond {
	c, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return c
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokNumber
	tokLParen
	tokRParen
	tokDot
	tokOp
)

type token struct {
	kind tokKind
	text string
}

type condLexer struct {
	src string
	pos int
	tok token
}

func newCondLexer(src string) *condLexer { return &condLexer{src: src} }

func (l *condLexer) next() error {
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !unicode.IsSpace(r) {
			break
		}
		l.pos += size
	}
	if l.pos >= len(l.src) {
		l.tok = token{kind: tokEOF}
		return nil
	}
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		l.tok = token{kind: tokLParen, text: "("}
	case c == ')':
		l.pos++
		l.tok = token{kind: tokRParen, text: ")"}
	case c == '.':
		l.pos++
		l.tok = token{kind: tokDot, text: "."}
	case c == '"':
		return l.lexString()
	case c == '=':
		l.pos++
		l.tok = token{kind: tokOp, text: "="}
	case c == '!' && l.peekAt(1) == '=':
		l.pos += 2
		l.tok = token{kind: tokOp, text: "!="}
	case c == '<':
		switch l.peekAt(1) {
		case '=':
			l.pos += 2
			l.tok = token{kind: tokOp, text: "<="}
		case '>':
			l.pos += 2
			l.tok = token{kind: tokOp, text: "!="}
		default:
			l.pos++
			l.tok = token{kind: tokOp, text: "<"}
		}
	case c == '>':
		if l.peekAt(1) == '=' {
			l.pos += 2
			l.tok = token{kind: tokOp, text: ">="}
		} else {
			l.pos++
			l.tok = token{kind: tokOp, text: ">"}
		}
	case c == '-' || (c >= '0' && c <= '9'):
		return l.lexNumber()
	default:
		// Identifiers are scanned rune-wise, not byte-wise, so multi-byte
		// letters survive intact instead of being truncated mid-rune.
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentStart(r) {
			return fmt.Errorf("cond: unexpected character %q at offset %d", r, l.pos)
		}
		start := l.pos
		for l.pos < len(l.src) {
			r, size = utf8.DecodeRuneInString(l.src[l.pos:])
			if !isIdentPart(r) {
				break
			}
			l.pos += size
		}
		l.tok = token{kind: tokIdent, text: l.src[start:l.pos]}
	}
	return nil
}

func (l *condLexer) peekAt(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func (l *condLexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			l.tok = token{kind: tokString, text: sb.String()}
			return nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return fmt.Errorf("cond: unterminated escape at offset %d", l.pos)
			}
			l.pos++
			sb.WriteByte(l.src[l.pos])
			l.pos++
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return fmt.Errorf("cond: unterminated string starting at offset %d", start)
}

func (l *condLexer) lexNumber() error {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
		l.pos++
	}
	l.tok = token{kind: tokNumber, text: l.src[start:l.pos]}
	return nil
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

type condParser struct {
	lex *condLexer
}

func (p *condParser) advance() error { return p.lex.next() }

func (p *condParser) isKeyword(kw string) bool {
	return p.lex.tok.kind == tokIdent && strings.EqualFold(p.lex.tok.text, kw)
}

func (p *condParser) parseOr() (Cond, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Or{L: left, R: right}
	}
	return left, nil
}

func (p *condParser) parseAnd() (Cond, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = And{L: left, R: right}
	}
	return left, nil
}

func (p *condParser) parseUnary() (Cond, error) {
	if p.isKeyword("NOT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{C: inner}, nil
	}
	if p.lex.tok.kind == tokLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.lex.tok.kind != tokRParen {
			return nil, fmt.Errorf("cond: expected ')', got %q", p.lex.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseSimple()
}

func (p *condParser) parseSimple() (Cond, error) {
	if p.lex.tok.kind != tokIdent {
		return nil, fmt.Errorf("cond: expected condition, got %q", p.lex.tok.text)
	}
	head := p.lex.tok.text
	switch {
	case strings.EqualFold(head, "label"):
		return p.parseLabelCmp()
	case strings.EqualFold(head, "len"):
		return p.parseLenCmp()
	default:
		return p.parsePropCmp()
	}
}

// label ( target ) op "string"
func (p *condParser) parseLabelCmp() (Cond, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	t, err := p.parseTarget()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	op, err := p.parseOp()
	if err != nil {
		return nil, err
	}
	if p.lex.tok.kind != tokString {
		return nil, fmt.Errorf("cond: label comparison needs a string literal, got %q", p.lex.tok.text)
	}
	v := p.lex.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	return LabelCmp{Target: t, Op: op, Value: v}, nil
}

// len ( ) op int
func (p *condParser) parseLenCmp() (Cond, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	if err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	op, err := p.parseOp()
	if err != nil {
		return nil, err
	}
	if p.lex.tok.kind != tokNumber {
		return nil, fmt.Errorf("cond: len comparison needs an integer, got %q", p.lex.tok.text)
	}
	k, err := strconv.Atoi(p.lex.tok.text)
	if err != nil {
		return nil, fmt.Errorf("cond: bad length %q: %w", p.lex.tok.text, err)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return LenCmp{Op: op, K: k}, nil
}

// target . prop op literal
func (p *condParser) parsePropCmp() (Cond, error) {
	t, err := p.parseTarget()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokDot, "."); err != nil {
		return nil, err
	}
	if p.lex.tok.kind != tokIdent {
		return nil, fmt.Errorf("cond: expected property name, got %q", p.lex.tok.text)
	}
	prop := p.lex.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	op, err := p.parseOp()
	if err != nil {
		return nil, err
	}
	v, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return PropCmp{Target: t, Prop: prop, Op: op, Value: v}, nil
}

func (p *condParser) parseTarget() (Target, error) {
	if p.lex.tok.kind != tokIdent {
		return Target{}, fmt.Errorf("cond: expected first/last/node(i)/edge(i), got %q", p.lex.tok.text)
	}
	name := p.lex.tok.text
	if err := p.advance(); err != nil {
		return Target{}, err
	}
	switch {
	case strings.EqualFold(name, "first"):
		return First(), nil
	case strings.EqualFold(name, "last"):
		return Last(), nil
	case strings.EqualFold(name, "node"), strings.EqualFold(name, "edge"):
		if err := p.expect(tokLParen, "("); err != nil {
			return Target{}, err
		}
		if p.lex.tok.kind != tokNumber {
			return Target{}, fmt.Errorf("cond: %s() needs an integer position, got %q", name, p.lex.tok.text)
		}
		i, err := strconv.Atoi(p.lex.tok.text)
		if err != nil || i < 1 {
			return Target{}, fmt.Errorf("cond: bad position %q (positions are 1-based)", p.lex.tok.text)
		}
		if err := p.advance(); err != nil {
			return Target{}, err
		}
		if err := p.expect(tokRParen, ")"); err != nil {
			return Target{}, err
		}
		if strings.EqualFold(name, "node") {
			return NodeAt(i), nil
		}
		return EdgeAt(i), nil
	default:
		return Target{}, fmt.Errorf("cond: unknown target %q", name)
	}
}

func (p *condParser) parseOp() (Op, error) {
	if p.lex.tok.kind != tokOp {
		return 0, fmt.Errorf("cond: expected comparison operator, got %q", p.lex.tok.text)
	}
	text := p.lex.tok.text
	if err := p.advance(); err != nil {
		return 0, err
	}
	switch text {
	case "=":
		return EQ, nil
	case "!=":
		return NE, nil
	case "<":
		return LT, nil
	case "<=":
		return LE, nil
	case ">":
		return GT, nil
	case ">=":
		return GE, nil
	default:
		return 0, fmt.Errorf("cond: unknown operator %q", text)
	}
}

func (p *condParser) parseLiteral() (graph.Value, error) {
	tok := p.lex.tok
	switch tok.kind {
	case tokString:
		if err := p.advance(); err != nil {
			return graph.Value{}, err
		}
		return graph.StringValue(tok.text), nil
	case tokNumber:
		if err := p.advance(); err != nil {
			return graph.Value{}, err
		}
		if strings.Contains(tok.text, ".") {
			f, err := strconv.ParseFloat(tok.text, 64)
			if err != nil {
				return graph.Value{}, fmt.Errorf("cond: bad number %q: %w", tok.text, err)
			}
			return graph.FloatValue(f), nil
		}
		i, err := strconv.ParseInt(tok.text, 10, 64)
		if err != nil {
			return graph.Value{}, fmt.Errorf("cond: bad number %q: %w", tok.text, err)
		}
		return graph.IntValue(i), nil
	case tokIdent:
		if strings.EqualFold(tok.text, "true") || strings.EqualFold(tok.text, "false") {
			if err := p.advance(); err != nil {
				return graph.Value{}, err
			}
			return graph.BoolValue(strings.EqualFold(tok.text, "true")), nil
		}
		return graph.Value{}, fmt.Errorf("cond: expected literal, got identifier %q", tok.text)
	default:
		return graph.Value{}, fmt.Errorf("cond: expected literal, got %q", tok.text)
	}
}

func (p *condParser) expect(k tokKind, what string) error {
	if p.lex.tok.kind != k {
		return fmt.Errorf("cond: expected %q, got %q", what, p.lex.tok.text)
	}
	return p.advance()
}
