package cond

import (
	"strings"
	"testing"

	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/path"
)

func fixture(t *testing.T) (*graph.Graph, path.Path) {
	t.Helper()
	g := ldbc.Figure1()
	// (n1:Moe) -e1:Knows-> (n2:Homer) -e4:Knows-> (n4:Apu)
	return g, path.MustFromKeys(g, "n1", "e1", "n2", "e4", "n4")
}

func TestSimpleConditions(t *testing.T) {
	g, p := fixture(t)
	tests := []struct {
		name string
		c    Cond
		want bool
	}{
		{"label(edge(1))=Knows", Label(EdgeAt(1), "Knows"), true},
		{"label(edge(2))=Knows", Label(EdgeAt(2), "Knows"), true},
		{"label(edge(1))=Likes", Label(EdgeAt(1), "Likes"), false},
		{"label(edge(3)) out of range", Label(EdgeAt(3), "Knows"), false},
		{"label(first)=Person", Label(First(), "Person"), true},
		{"label(last)=Person", Label(Last(), "Person"), true},
		{"label(last)=Message", Label(Last(), "Message"), false},
		{"label(node(2))=Person", Label(NodeAt(2), "Person"), true},
		{"label(node(9)) out of range", Label(NodeAt(9), "Person"), false},
		{"first.name=Moe", Prop(First(), "name", graph.StringValue("Moe")), true},
		{"first.name=Apu", Prop(First(), "name", graph.StringValue("Apu")), false},
		{"last.name=Apu", Prop(Last(), "name", graph.StringValue("Apu")), true},
		{"node(2).name=Homer", Prop(NodeAt(2), "name", graph.StringValue("Homer")), true},
		{"missing prop", Prop(First(), "ghost", graph.StringValue("x")), false},
		{"len()=2", Len(2), true},
		{"len()=3", Len(3), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.c.Eval(g, p); got != tc.want {
				t.Errorf("Eval(%s) = %v, want %v", tc.c, got, tc.want)
			}
		})
	}
}

func TestInequalityOps(t *testing.T) {
	g, p := fixture(t)
	tests := []struct {
		c    Cond
		want bool
	}{
		{LenCmp{Op: NE, K: 3}, true},
		{LenCmp{Op: NE, K: 2}, false},
		{LenCmp{Op: LT, K: 3}, true},
		{LenCmp{Op: LE, K: 2}, true},
		{LenCmp{Op: GT, K: 1}, true},
		{LenCmp{Op: GE, K: 3}, false},
		{PropCmp{Target: First(), Prop: "name", Op: NE, Value: graph.StringValue("Apu")}, true},
		{PropCmp{Target: First(), Prop: "name", Op: LT, Value: graph.StringValue("Zzz")}, true},
		{LabelCmp{Target: First(), Op: NE, Value: "Message"}, true},
		// NE against a missing property is false (null satisfies nothing).
		{PropCmp{Target: First(), Prop: "ghost", Op: NE, Value: graph.StringValue("x")}, false},
		// NE across incomparable present values is true.
		{PropCmp{Target: First(), Prop: "name", Op: NE, Value: graph.IntValue(5)}, true},
		{PropCmp{Target: First(), Prop: "name", Op: LT, Value: graph.IntValue(5)}, false},
	}
	for _, tc := range tests {
		if got := tc.c.Eval(g, p); got != tc.want {
			t.Errorf("Eval(%s) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func TestComplexConditions(t *testing.T) {
	g, p := fixture(t)
	moe := Prop(First(), "name", graph.StringValue("Moe"))
	apu := Prop(Last(), "name", graph.StringValue("Apu"))
	lisa := Prop(First(), "name", graph.StringValue("Lisa"))
	if !(And{L: moe, R: apu}).Eval(g, p) {
		t.Error("Moe AND Apu should hold")
	}
	if (And{L: moe, R: lisa}).Eval(g, p) {
		t.Error("Moe AND Lisa should fail")
	}
	if !(Or{L: lisa, R: apu}).Eval(g, p) {
		t.Error("Lisa OR Apu should hold")
	}
	if (Or{L: lisa, R: Not{C: moe}}).Eval(g, p) {
		t.Error("Lisa OR NOT Moe should fail")
	}
	if !(Not{C: lisa}).Eval(g, p) {
		t.Error("NOT Lisa should hold")
	}
	if !(True{}).Eval(g, p) {
		t.Error("True should hold")
	}
}

func TestConj(t *testing.T) {
	g, p := fixture(t)
	if _, ok := Conj().(True); !ok {
		t.Error("Conj() should be True")
	}
	moe := Prop(First(), "name", graph.StringValue("Moe"))
	if got := Conj(moe); got.String() != moe.String() {
		t.Error("Conj(c) should be c")
	}
	c := Conj(moe, Label(EdgeAt(1), "Knows"), Len(2))
	if !c.Eval(g, p) {
		t.Errorf("Conj of satisfied conditions failed: %s", c)
	}
}

func TestUnlabelledObjects(t *testing.T) {
	b := graph.NewBuilder()
	b.AddNode("a", "", nil)
	b.AddNode("b", "", nil)
	b.AddEdge("e", "a", "b", "", nil)
	g := b.MustBuild()
	p := path.MustFromKeys(g, "a", "e", "b")
	// λ is partial: unlabelled objects satisfy no label condition, even NE.
	if Label(First(), "X").Eval(g, p) {
		t.Error("unlabelled node must not equal any label")
	}
	if (LabelCmp{Target: EdgeAt(1), Op: NE, Value: "X"}).Eval(g, p) {
		t.Error("unlabelled edge must not satisfy label != X")
	}
}

func TestStrings(t *testing.T) {
	tests := []struct {
		c    Cond
		want string
	}{
		{Label(EdgeAt(1), "Knows"), `label(edge(1)) = "Knows"`},
		{Prop(First(), "name", graph.StringValue("Moe")), `first.name = "Moe"`},
		{Prop(Last(), "age", graph.IntValue(3)), `last.age = 3`},
		{Len(2), "len() = 2"},
		{LenCmp{Op: GE, K: 1}, "len() >= 1"},
		{And{L: Len(1), R: Len(2)}, "(len() = 1 AND len() = 2)"},
		{Or{L: Len(1), R: Len(2)}, "(len() = 1 OR len() = 2)"},
		{Not{C: Len(1)}, "NOT (len() = 1)"},
		{True{}, "true"},
		{Label(NodeAt(3), "P"), `label(node(3)) = "P"`},
	}
	for _, tc := range tests {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
	for op, want := range map[Op]string{EQ: "=", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">="} {
		if op.String() != want {
			t.Errorf("Op %d String = %q, want %q", op, op.String(), want)
		}
	}
}

func TestMaxPosition(t *testing.T) {
	tests := []struct {
		c         Cond
		maxNode   int
		maxEdge   int
		lastOrLen bool
	}{
		{Label(First(), "P"), 1, 0, false},
		{Label(Last(), "P"), 0, 0, true},
		{Label(NodeAt(3), "P"), 3, 0, false},
		{Label(EdgeAt(2), "K"), 0, 2, false},
		{Len(4), 0, 0, true},
		{And{L: Label(NodeAt(2), "P"), R: Label(EdgeAt(5), "K")}, 2, 5, false},
		{Or{L: Label(First(), "P"), R: Len(1)}, 1, 0, true},
		{Not{C: Label(EdgeAt(1), "K")}, 0, 1, false},
		{True{}, 0, 0, true},
	}
	for _, tc := range tests {
		n, e, u := MaxPosition(tc.c)
		if n != tc.maxNode || e != tc.maxEdge || u != tc.lastOrLen {
			t.Errorf("MaxPosition(%s) = (%d,%d,%v), want (%d,%d,%v)",
				tc.c, n, e, u, tc.maxNode, tc.maxEdge, tc.lastOrLen)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	inputs := []string{
		`label(edge(1)) = "Knows"`,
		`first.name = "Moe" AND last.name = "Apu"`,
		`len() <= 3 OR NOT (last.age > 30)`,
		`label(first) != "Message"`,
		`node(2).score >= 4.5`,
		`first.active = true AND first.retired = false`,
		`(len() = 1 OR len() = 2) AND label(edge(1)) = "Likes"`,
		`edge(1).since < 2020`,
	}
	for _, in := range inputs {
		c, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		// Re-parsing the canonical rendering must agree.
		c2, err := Parse(c.String())
		if err != nil {
			t.Errorf("re-Parse(%q): %v", c.String(), err)
			continue
		}
		if c.String() != c2.String() {
			t.Errorf("round trip changed %q -> %q", c.String(), c2.String())
		}
	}
}

func TestParseEvaluates(t *testing.T) {
	g, p := fixture(t)
	tests := []struct {
		in   string
		want bool
	}{
		{`first.name = "Moe" AND last.name = "Apu"`, true},
		{`first.name = "Moe" AND last.name = "Moe"`, false},
		{`label(edge(1)) = "Knows" OR label(edge(1)) = "Likes"`, true},
		{`NOT (len() = 5)`, true},
		{`len() >= 2 AND len() <= 2`, true},
		{`node(2).name = "Homer"`, true},
		{`LABEL(FIRST) = "Person"`, true}, // keywords are case-insensitive
	}
	for _, tc := range tests {
		c, err := Parse(tc.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.in, err)
		}
		if got := c.Eval(g, p); got != tc.want {
			t.Errorf("Eval(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in      string
		mention string
	}{
		{"", "expected condition"},
		{"len() =", "integer"},
		{"len() = x", "integer"},
		{"label(first) = 5", "string literal"},
		{"bogus(1) = 3", "unknown target"},
		{"first.name ~ 3", "unexpected character"},
		{"len() = 1 extra", "unexpected"},
		{"(len() = 1", "expected ')'"},
		{"node(0).p = 1", "1-based"},
		{"first.name = \"unterminated", "unterminated"},
		{"NOT", "expected condition"},
		{"len ( = 2", "expected"},
		{"first.name = moe", "expected literal"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.in)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.mention) {
			t.Errorf("Parse(%q) error %q does not mention %q", tc.in, err, tc.mention)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("???")
}
