package rpq_test

import (
	"testing"

	"pathalgebra/internal/rpq"
)

// FuzzParseRPQ asserts the regular-path-expression parser never panics:
// arbitrary input must yield either an expression or an error. A parsed
// expression must additionally survive re-parsing its own rendering
// (String is the parser's concrete syntax).
func FuzzParseRPQ(f *testing.F) {
	for _, seed := range []string{
		":Knows+",
		"(:Knows+)|(:Likes/:Has_creator)*",
		"Knows|(Knows/Knows)",
		`"Has creator"/:Likes?`,
		"-+",
		"((((:A))))*",
		":A/:B|:C+?*",
		"(",
		")",
		"|",
		"//",
		`"unterminated`,
		`""`,
		":",
		"染色体/:Ünïcôdé+",
		"\x00\xff\xfe",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		e, err := rpq.Parse(input)
		if err != nil {
			return
		}
		if _, err := rpq.Parse(e.String()); err != nil {
			t.Errorf("rendering of parsed %q does not re-parse: %q: %v", input, e.String(), err)
		}
	})
}
