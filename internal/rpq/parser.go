package rpq

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses a regular path expression in the paper's GQL-like syntax:
//
//	:Knows+
//	(:Knows+)|(:Likes/:Has_creator)*
//	Knows|(Knows/Knows)
//
// Grammar (lowest to highest precedence):
//
//	alt    := concat ('|' concat)*
//	concat := postfix ('/' postfix)*
//	postfix:= atom ('*' | '+' | '?')*
//	atom   := ':'? label | '-' | '(' alt ')'
//
// The leading ':' on labels is optional, matching both the paper's
// `:Knows` and `Knows` spellings. Labels may be quoted ("Has creator") to
// include spaces.
func Parse(input string) (Expr, error) {
	p := &parser{src: input}
	p.skipSpace()
	e, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("rpq: unexpected %q at offset %d", p.src[p.pos], p.pos)
	}
	return e, nil
}

// MustParse is Parse panicking on error, for fixtures and examples.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) parseAlt() (Expr, error) {
	left, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '|' {
			return left, nil
		}
		p.pos++
		right, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		left = Alt{L: left, R: right}
	}
}

func (p *parser) parseConcat() (Expr, error) {
	left, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '/' {
			return left, nil
		}
		p.pos++
		right, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		left = Concat{L: left, R: right}
	}
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '*':
			p.pos++
			e = Star{In: e}
		case '+':
			p.pos++
			e = Plus{In: e}
		case '?':
			p.pos++
			e = Opt{In: e}
		default:
			return e, nil
		}
	}
}

func (p *parser) parseAtom() (Expr, error) {
	p.skipSpace()
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		e, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("rpq: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return e, nil
	case c == '-':
		p.pos++
		return AnyLabel{}, nil
	case c == ':':
		p.pos++
		return p.parseLabel()
	case c == '"':
		return p.parseLabel()
	case isLabelStart(rune(c)):
		return p.parseLabel()
	case c == 0:
		return nil, fmt.Errorf("rpq: unexpected end of expression")
	default:
		return nil, fmt.Errorf("rpq: unexpected %q at offset %d", c, p.pos)
	}
}

func (p *parser) parseLabel() (Expr, error) {
	p.skipSpace()
	if p.peek() == '"' {
		p.pos++
		var sb strings.Builder
		for p.pos < len(p.src) && p.src[p.pos] != '"' {
			sb.WriteByte(p.src[p.pos])
			p.pos++
		}
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("rpq: unterminated quoted label")
		}
		p.pos++
		if sb.Len() == 0 {
			return nil, fmt.Errorf("rpq: empty label")
		}
		return Label{Name: sb.String()}, nil
	}
	start := p.pos
	for p.pos < len(p.src) && isLabelPart(rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("rpq: expected label at offset %d", p.pos)
	}
	return Label{Name: p.src[start:p.pos]}, nil
}

func isLabelStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isLabelPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
