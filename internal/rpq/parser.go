package rpq

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Parse parses a regular path expression in the paper's GQL-like syntax:
//
//	:Knows+
//	(:Knows+)|(:Likes/:Has_creator)*
//	Knows|(Knows/Knows)
//
// Grammar (lowest to highest precedence):
//
//	alt    := concat ('|' concat)*
//	concat := postfix ('/' postfix)*
//	postfix:= atom ('*' | '+' | '?')*
//	atom   := ':'? label | '-' | '(' alt ')'
//
// The leading ':' on labels is optional, matching both the paper's
// `:Knows` and `Knows` spellings. Labels may be quoted ("Has creator") to
// include spaces.
func Parse(input string) (Expr, error) {
	p := &parser{src: input}
	p.skipSpace()
	e, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("rpq: unexpected %q at offset %d", p.src[p.pos], p.pos)
	}
	return e, nil
}

// MustParse is Parse panicking on error, for fixtures and examples.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		r, size := utf8.DecodeRuneInString(p.src[p.pos:])
		if !unicode.IsSpace(r) {
			return
		}
		p.pos += size
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

// peekRune decodes the rune at the cursor; size 0 means end of input.
// Labels are scanned rune-wise, not byte-wise, so multi-byte letters
// (e.g. ":Ünïcôdé") survive a parse/render round trip intact.
func (p *parser) peekRune() (rune, int) {
	if p.pos >= len(p.src) {
		return 0, 0
	}
	return utf8.DecodeRuneInString(p.src[p.pos:])
}

func (p *parser) parseAlt() (Expr, error) {
	left, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '|' {
			return left, nil
		}
		p.pos++
		right, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		left = Alt{L: left, R: right}
	}
}

func (p *parser) parseConcat() (Expr, error) {
	left, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '/' {
			return left, nil
		}
		p.pos++
		right, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		left = Concat{L: left, R: right}
	}
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '*':
			p.pos++
			e = Star{In: e}
		case '+':
			p.pos++
			e = Plus{In: e}
		case '?':
			p.pos++
			e = Opt{In: e}
		default:
			return e, nil
		}
	}
}

func (p *parser) parseAtom() (Expr, error) {
	p.skipSpace()
	c, size := p.peekRune()
	switch {
	case c == '(':
		p.pos++
		e, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("rpq: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return e, nil
	case c == '-':
		p.pos++
		return AnyLabel{}, nil
	case c == ':':
		p.pos++
		return p.parseLabel()
	case c == '"':
		return p.parseLabel()
	case isLabelStart(c):
		return p.parseLabel()
	case size == 0:
		return nil, fmt.Errorf("rpq: unexpected end of expression")
	default:
		return nil, fmt.Errorf("rpq: unexpected %q at offset %d", c, p.pos)
	}
}

func (p *parser) parseLabel() (Expr, error) {
	p.skipSpace()
	if p.peek() == '"' {
		p.pos++
		var sb strings.Builder
		for p.pos < len(p.src) && p.src[p.pos] != '"' {
			sb.WriteByte(p.src[p.pos])
			p.pos++
		}
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("rpq: unterminated quoted label")
		}
		p.pos++
		if sb.Len() == 0 {
			return nil, fmt.Errorf("rpq: empty label")
		}
		return Label{Name: sb.String()}, nil
	}
	start := p.pos
	for {
		r, size := p.peekRune()
		if size == 0 || !isLabelPart(r) {
			break
		}
		p.pos += size
	}
	if p.pos == start {
		return nil, fmt.Errorf("rpq: expected label at offset %d", p.pos)
	}
	return Label{Name: p.src[start:p.pos]}, nil
}

func isLabelStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isLabelPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
