package rpq

import (
	"strings"
	"testing"

	"pathalgebra/internal/core"
)

func TestParseShapes(t *testing.T) {
	tests := []struct {
		in   string
		want string // canonical String rendering
	}{
		{":Knows", ":Knows"},
		{"Knows", ":Knows"},
		{":Knows+", ":Knows+"},
		{":Knows*", ":Knows*"},
		{":Knows?", ":Knows?"},
		{"-", "-"},
		{":A/:B", ":A/:B"},
		{":A|:B", ":A|:B"},
		{"(:A/:B)+", "(:A/:B)+"},
		{"(:Knows+)|(:Likes/:Has_creator)*", ":Knows+|(:Likes/:Has_creator)*"},
		{":A/:B/:C", ":A/:B/:C"},
		{":A|:B|:C", ":A|:B|:C"},
		{":A/(:B|:C)", ":A/(:B|:C)"},
		{"(:A|:B)/:C", "(:A|:B)/:C"},
		{`"Has creator"`, `:"Has creator"`},
		{`:"Has creator"`, `:"Has creator"`},
		{":A++", ":A++"},
		{" :A / :B ", ":A/:B"},
		{":A?*", ":A?*"},
	}
	for _, tc := range tests {
		e, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got := e.String(); got != tc.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
		// The canonical rendering must re-parse to the same shape.
		e2, err := Parse(e.String())
		if err != nil {
			t.Errorf("re-Parse(%q): %v", e.String(), err)
			continue
		}
		if e2.String() != e.String() {
			t.Errorf("canonical form unstable: %q -> %q", e.String(), e2.String())
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// | binds loosest, / tighter, postfix tightest: :A|:B/:C+ is
	// Alt(A, Concat(B, Plus(C))).
	e := MustParse(":A|:B/:C+")
	alt, ok := e.(Alt)
	if !ok {
		t.Fatalf("top = %T, want Alt", e)
	}
	if _, ok := alt.L.(Label); !ok {
		t.Errorf("left of | = %T, want Label", alt.L)
	}
	concat, ok := alt.R.(Concat)
	if !ok {
		t.Fatalf("right of | = %T, want Concat", alt.R)
	}
	if _, ok := concat.R.(Plus); !ok {
		t.Errorf("right of / = %T, want Plus", concat.R)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"", "(", "(:A", ":A|", ":A/", "+", "|:A", ":A)", `":unterminated`,
		`""`, ":A :B", ":", "()",
	}
	for _, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic")
		}
	}()
	MustParse("(((")
}

func TestCompileShapes(t *testing.T) {
	tests := []struct {
		in   string
		want string // core plan rendering
	}{
		{":Knows", `σ[label(edge(1)) = "Knows"](Edges(G))`},
		{"-", "Edges(G)"},
		{
			":Knows+",
			`ϕTrail(σ[label(edge(1)) = "Knows"](Edges(G)))`,
		},
		{
			":Likes/:Has_creator",
			`(σ[label(edge(1)) = "Likes"](Edges(G)) ⋈ σ[label(edge(1)) = "Has_creator"](Edges(G)))`,
		},
		{
			":A|:B",
			`(σ[label(edge(1)) = "A"](Edges(G)) ∪ σ[label(edge(1)) = "B"](Edges(G)))`,
		},
		{
			":A*",
			`(ϕTrail(σ[label(edge(1)) = "A"](Edges(G))) ∪ Nodes(G))`,
		},
		{
			":A?",
			`(σ[label(edge(1)) = "A"](Edges(G)) ∪ Nodes(G))`,
		},
	}
	for _, tc := range tests {
		plan := Compile(MustParse(tc.in), core.Trail)
		if got := plan.String(); got != tc.want {
			t.Errorf("Compile(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestFigure2PlanShape: the intro query's pattern compiles to the plan of
// Figure 2 — a union of two recursions, the right one over a join.
func TestFigure2PlanShape(t *testing.T) {
	e := MustParse("(:Knows+)|(:Likes/:Has_creator)+")
	plan := Compile(e, core.Walk)
	u, ok := plan.(core.Union)
	if !ok {
		t.Fatalf("top operator %T, want Union", plan)
	}
	l, ok := u.L.(core.Recurse)
	if !ok {
		t.Fatalf("left branch %T, want Recurse", u.L)
	}
	if _, ok := l.In.(core.Select); !ok {
		t.Errorf("left recursion input %T, want Select", l.In)
	}
	r, ok := u.R.(core.Recurse)
	if !ok {
		t.Fatalf("right branch %T, want Recurse", u.R)
	}
	if _, ok := r.In.(core.Join); !ok {
		t.Errorf("right recursion input %T, want Join", r.In)
	}
}

// TestFigure4PlanShape: the Kleene-star variant unions Nodes(G) into the
// right branch, as in Figure 4.
func TestFigure4PlanShape(t *testing.T) {
	e := MustParse("(:Knows+)|(:Likes/:Has_creator)*")
	plan := Compile(e, core.Walk)
	u, ok := plan.(core.Union)
	if !ok {
		t.Fatalf("top operator %T, want Union", plan)
	}
	star, ok := u.R.(core.Union)
	if !ok {
		t.Fatalf("right branch %T, want Union (ϕ ∪ Nodes)", u.R)
	}
	if _, ok := star.R.(core.Nodes); !ok {
		t.Errorf("star's right operand %T, want Nodes", star.R)
	}
	if s := plan.String(); !strings.Contains(s, "Nodes(G)") {
		t.Errorf("plan rendering lacks Nodes(G): %s", s)
	}
}

func TestCompileAppliesSemanticsUniformly(t *testing.T) {
	e := MustParse("(:A+/:B+)+")
	plan := Compile(e, core.Acyclic)
	count := 0
	var walk func(p core.PathExpr)
	walk = func(p core.PathExpr) {
		switch p := p.(type) {
		case core.Recurse:
			count++
			if p.Sem != core.Acyclic {
				t.Errorf("nested recursion uses %v, want Acyclic", p.Sem)
			}
			walk(p.In)
		case core.Select:
			walk(p.In)
		case core.Join:
			walk(p.L)
			walk(p.R)
		case core.Union:
			walk(p.L)
			walk(p.R)
		}
	}
	walk(plan)
	if count != 3 {
		t.Errorf("found %d recursions, want 3", count)
	}
}

func TestHasRecursion(t *testing.T) {
	tests := map[string]bool{
		":A":        false,
		":A/:B":     false,
		":A|:B":     false,
		":A?":       false,
		":A+":       true,
		":A*":       true,
		":A/(:B+)":  true,
		"(:A|:B+)?": true,
		"-":         false,
	}
	for in, want := range tests {
		if got := HasRecursion(MustParse(in)); got != want {
			t.Errorf("HasRecursion(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestLabels(t *testing.T) {
	got := Labels(MustParse("(:Knows+)|(:Likes/:Has_creator)*|:Knows"))
	want := []string{"Knows", "Likes", "Has_creator"}
	if len(got) != len(want) {
		t.Fatalf("Labels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Labels[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if ls := Labels(MustParse("-")); len(ls) != 0 {
		t.Errorf("Labels(-) = %v, want empty", ls)
	}
}
