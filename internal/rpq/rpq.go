// Package rpq implements regular path expressions — the regex component of
// regular path queries (§2.3) — and their compilation into path algebra
// plans with the shapes of the paper's Figures 2–4: a label becomes a
// selection over Edges(G), concatenation becomes ⋈, alternation becomes ∪,
// Kleene plus becomes the recursive operator ϕ, and Kleene star becomes
// ϕ ∪ Nodes(G).
package rpq

import (
	"fmt"

	"pathalgebra/internal/cond"
	"pathalgebra/internal/core"
)

// Expr is a regular path expression over edge labels.
type Expr interface {
	fmt.Stringer
	isRPQ()
}

// Label matches a single edge with the given label.
type Label struct{ Name string }

func (Label) isRPQ() {}

func (l Label) String() string {
	for _, r := range l.Name {
		if !isLabelPart(r) {
			return `:"` + l.Name + `"`
		}
	}
	return ":" + l.Name
}

// AnyLabel matches a single edge with any label (written "-").
type AnyLabel struct{}

func (AnyLabel) isRPQ()         {}
func (AnyLabel) String() string { return "-" }

// Concat matches L followed by R (written L/R).
type Concat struct{ L, R Expr }

func (Concat) isRPQ() {}
func (c Concat) String() string {
	return fmt.Sprintf("%s/%s", parenthesize(c.L, precConcat), parenthesize(c.R, precConcat))
}

// Alt matches either L or R (written L|R).
type Alt struct{ L, R Expr }

func (Alt) isRPQ() {}
func (a Alt) String() string {
	return fmt.Sprintf("%s|%s", parenthesize(a.L, precAlt), parenthesize(a.R, precAlt))
}

// Star matches zero or more repetitions of In (written In*).
type Star struct{ In Expr }

func (Star) isRPQ()           {}
func (s Star) String() string { return parenthesize(s.In, precPostfix) + "*" }

// Plus matches one or more repetitions of In (written In+).
type Plus struct{ In Expr }

func (Plus) isRPQ()           {}
func (p Plus) String() string { return parenthesize(p.In, precPostfix) + "+" }

// Opt matches zero or one occurrence of In (written In?).
type Opt struct{ In Expr }

func (Opt) isRPQ()           {}
func (o Opt) String() string { return parenthesize(o.In, precPostfix) + "?" }

const (
	precAlt = iota
	precConcat
	precPostfix
)

func precedence(e Expr) int {
	switch e.(type) {
	case Alt:
		return precAlt
	case Concat:
		return precConcat
	default:
		return precPostfix
	}
}

func parenthesize(e Expr, min int) string {
	if precedence(e) < min {
		return "(" + e.String() + ")"
	}
	return e.String()
}

// Compile translates a regular path expression into a path algebra plan,
// applying the given path semantics to every recursive operator, as the
// paper's restrictors do (§5): the restrictor chooses ϕSem uniformly for
// the whole pattern.
func Compile(e Expr, sem core.Semantics) core.PathExpr {
	switch e := e.(type) {
	case Label:
		return core.Select{
			Cond: cond.Label(cond.EdgeAt(1), e.Name),
			In:   core.Edges{},
		}
	case AnyLabel:
		return core.Edges{}
	case Concat:
		return core.Join{L: Compile(e.L, sem), R: Compile(e.R, sem)}
	case Alt:
		return core.Union{L: Compile(e.L, sem), R: Compile(e.R, sem)}
	case Plus:
		return core.Recurse{Sem: sem, In: Compile(e.In, sem)}
	case Star:
		// Figure 4: (Likes/Has_creator)* is ϕ(...) ∪ Nodes(G).
		return core.Union{
			L: core.Recurse{Sem: sem, In: Compile(e.In, sem)},
			R: core.Nodes{},
		}
	case Opt:
		return core.Union{L: Compile(e.In, sem), R: core.Nodes{}}
	case nil:
		panic("rpq: Compile of nil expression")
	default:
		panic(fmt.Sprintf("rpq: unknown expression type %T", e))
	}
}

// Reverse returns the expression matching exactly the reversed words of
// e: concatenations flip operand order, everything else maps through. A
// path p matches e iff reverse(p) matches Reverse(e), which is what the
// backward product search evaluates over the graph's in-adjacency.
func Reverse(e Expr) Expr {
	switch e := e.(type) {
	case Label, AnyLabel, nil:
		return e
	case Concat:
		return Concat{L: Reverse(e.R), R: Reverse(e.L)}
	case Alt:
		return Alt{L: Reverse(e.L), R: Reverse(e.R)}
	case Star:
		return Star{In: Reverse(e.In)}
	case Plus:
		return Plus{In: Reverse(e.In)}
	case Opt:
		return Opt{In: Reverse(e.In)}
	default:
		panic(fmt.Sprintf("rpq: unknown expression type %T", e))
	}
}

// HasRecursion reports whether the expression contains * or +, i.e.
// whether its compiled plan contains a recursive operator.
func HasRecursion(e Expr) bool {
	switch e := e.(type) {
	case Label, AnyLabel, nil:
		return false
	case Concat:
		return HasRecursion(e.L) || HasRecursion(e.R)
	case Alt:
		return HasRecursion(e.L) || HasRecursion(e.R)
	case Star, Plus:
		return true
	case Opt:
		return HasRecursion(e.In)
	default:
		return false
	}
}

// Labels returns the distinct edge labels mentioned by the expression, in
// first-occurrence order.
func Labels(e Expr) []string {
	var out []string
	seen := make(map[string]bool)
	var walk func(Expr)
	walk = func(e Expr) {
		switch e := e.(type) {
		case Label:
			if !seen[e.Name] {
				seen[e.Name] = true
				out = append(out, e.Name)
			}
		case Concat:
			walk(e.L)
			walk(e.R)
		case Alt:
			walk(e.L)
			walk(e.R)
		case Star:
			walk(e.In)
		case Plus:
			walk(e.In)
		case Opt:
			walk(e.In)
		}
	}
	walk(e)
	return out
}
