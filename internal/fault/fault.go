// Package fault is a zero-dependency, deterministic fault-injection
// registry. Production code marks its failure seams with named sites —
// fault.Hit("wal.fsync"), fault.Hit("compact.swap") — and tests arm a
// seeded Schedule that makes chosen sites fail on the Nth hit, fail with
// probability p, inject latency, or panic. Disarmed (the production
// state) a site check compiles to one atomic pointer load and a nil
// check: no allocation, no branch history beyond the load, which is what
// lets fault points sit on write paths without taxing the hot read path
// (gated in scripts/check_allocs.sh).
//
// Determinism contract: with the same Schedule (same Seed, same Rules)
// armed, the same sequence of Hit calls observes the same sequence of
// injected faults. Probabilistic rules draw from a seeded generator
// advanced only by hits on their own site, so unrelated sites do not
// perturb each other's draws.
//
// The registry is global (the seams it instruments — WAL, compactor,
// worker pools, HTTP writes — span packages), so tests arming it must
// not run in parallel with each other; Arm returns a restore func for
// t.Cleanup.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel every injected failure wraps: harnesses
// separate injected faults from organic ones with errors.Is(err,
// fault.ErrInjected).
var ErrInjected = errors.New("fault: injected failure")

// Error is one injected failure, carrying the site that produced it.
type Error struct {
	Site string
	// Hit is the 1-based count of Hit calls on the site when the rule
	// fired — which occurrence failed, for harness diagnostics.
	Hit int
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected failure at %s (hit %d)", e.Site, e.Hit)
}

// Is makes every injected failure errors.Is-able as ErrInjected.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// Mode selects what an armed rule does when it fires.
type Mode uint8

const (
	// ModeError makes Hit return an *Error wrapping ErrInjected.
	ModeError Mode = iota
	// ModeLatency makes Hit sleep for Rule.Delay, then succeed.
	ModeLatency
	// ModePanic makes Hit panic with an *Error value — exercising the
	// recover seams (worker pools, HTTP handlers, the compactor).
	ModePanic
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeLatency:
		return "latency"
	case ModePanic:
		return "panic"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Rule arms one site. The zero Nth/Prob combination fires on every hit;
// Nth > 0 fires on exactly the Nth hit of the site; Prob > 0 fires each
// hit with probability Prob drawn from the schedule's seeded generator.
type Rule struct {
	Site  string
	Mode  Mode
	Nth   int           // fire on exactly this 1-based hit (0 = not hit-gated)
	Prob  float64       // fire with this probability per hit (0 = not probabilistic)
	Delay time.Duration // ModeLatency sleep
}

// Schedule is a deterministic set of armed rules.
type Schedule struct {
	Seed  int64
	Rules []Rule
}

// siteState is the armed per-site state: ordered rules, a hit counter,
// and a per-site seeded generator for probabilistic rules.
type siteState struct {
	rules []Rule
	hits  int
	rng   *rand.Rand
}

// injector is one armed schedule. All mutation happens under mu — armed
// paths are test-only, so a mutex is fine; the disarmed path never
// touches it.
type injector struct {
	mu    sync.Mutex
	sites map[string]*siteState
}

// armed is nil when disarmed — the whole production-path cost of the
// registry is this load and the nil check.
var armed atomic.Pointer[injector]

// Arm installs the schedule, replacing any armed one, and returns a
// restore func that disarms (pass to t.Cleanup). Each site gets its own
// generator seeded from Schedule.Seed and the site name, so the draw
// sequence per site depends only on that site's hit sequence.
func Arm(s Schedule) (restore func()) {
	inj := &injector{sites: make(map[string]*siteState)}
	for _, r := range s.Rules {
		st := inj.sites[r.Site]
		if st == nil {
			st = &siteState{rng: rand.New(rand.NewSource(s.Seed ^ int64(siteHash(r.Site))))}
			inj.sites[r.Site] = st
		}
		st.rules = append(st.rules, r)
	}
	armed.Store(inj)
	return Disarm
}

// Disarm removes any armed schedule; every site becomes a no-op again.
func Disarm() { armed.Store(nil) }

// Enabled reports whether a schedule is armed — for code that must
// choose a slower shadow path only under test (none currently does).
func Enabled() bool { return armed.Load() != nil }

// siteHash is FNV-32a over the site name, mixing the site into the
// per-site generator seed.
func siteHash(site string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(site); i++ {
		h ^= uint32(site[i])
		h *= 16777619
	}
	return h
}

// Hit is the injection check production code places at a named failure
// seam. Disarmed it returns nil at the cost of one atomic load; armed it
// counts the hit and applies the first firing rule for the site: an
// injected error, a latency sleep, or a panic.
//
//pathalgebra:hotpath
func Hit(site string) error {
	inj := armed.Load()
	if inj == nil {
		return nil
	}
	return inj.hit(site)
}

func (inj *injector) hit(site string) error {
	inj.mu.Lock()
	st := inj.sites[site]
	if st == nil {
		inj.mu.Unlock()
		return nil
	}
	st.hits++
	hit := st.hits
	var fired *Rule
	for i := range st.rules {
		r := &st.rules[i]
		switch {
		case r.Nth > 0:
			if hit == r.Nth {
				fired = r
			}
		case r.Prob > 0:
			if st.rng.Float64() < r.Prob {
				fired = r
			}
		default:
			fired = r
		}
		if fired != nil {
			break
		}
	}
	inj.mu.Unlock()
	if fired == nil {
		return nil
	}
	switch fired.Mode {
	case ModeLatency:
		time.Sleep(fired.Delay)
		return nil
	case ModePanic:
		panic(&Error{Site: site, Hit: hit})
	default:
		return &Error{Site: site, Hit: hit}
	}
}

// Hits reports how many times each armed site has been hit (fired or
// not) — harnesses assert with it that a schedule actually exercised the
// seams it targeted. Returns nil when disarmed.
func Hits() map[string]int {
	inj := armed.Load()
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make(map[string]int, len(inj.sites))
	for site, st := range inj.sites {
		out[site] = st.hits
	}
	return out
}
