package fault

import "testing"

// BenchmarkDisarmedHit is the allocation-parity gate for disarmed fault
// points (scripts/check_allocs.sh pins it at exactly 0 allocs/op): the
// production cost of every fault.Hit seam must stay one atomic load plus
// a nil check, like PR 6's empty-delta overlay read.
func BenchmarkDisarmedHit(b *testing.B) {
	Disarm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Hit("wal.fsync"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArmedMiss measures an armed schedule whose rules target other
// sites — the worst realistic armed cost on a non-targeted seam.
func BenchmarkArmedMiss(b *testing.B) {
	restore := Arm(Schedule{Rules: []Rule{{Site: "other", Nth: 1}}})
	defer restore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Hit("wal.fsync"); err != nil {
			b.Fatal(err)
		}
	}
}
