package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsNoop(t *testing.T) {
	Disarm()
	for i := 0; i < 100; i++ {
		if err := Hit("wal.fsync"); err != nil {
			t.Fatalf("disarmed Hit returned %v", err)
		}
	}
	if Enabled() {
		t.Fatal("Enabled() true while disarmed")
	}
	if Hits() != nil {
		t.Fatal("Hits() non-nil while disarmed")
	}
}

func TestFailNth(t *testing.T) {
	restore := Arm(Schedule{Rules: []Rule{{Site: "s", Nth: 3}}})
	defer restore()
	for i := 1; i <= 5; i++ {
		err := Hit("s")
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: want injected error, got %v", i, err)
			}
			var fe *Error
			if !errors.As(err, &fe) || fe.Site != "s" || fe.Hit != 3 {
				t.Fatalf("hit %d: bad error detail %v", i, err)
			}
		} else if err != nil {
			t.Fatalf("hit %d: unexpected %v", i, err)
		}
	}
	if got := Hits()["s"]; got != 5 {
		t.Fatalf("Hits()[s] = %d, want 5", got)
	}
}

func TestUnarmedSitePasses(t *testing.T) {
	restore := Arm(Schedule{Rules: []Rule{{Site: "s", Nth: 1}}})
	defer restore()
	if err := Hit("other"); err != nil {
		t.Fatalf("unarmed site failed: %v", err)
	}
}

// TestProbDeterministic pins the determinism contract: the same seed
// yields the same fire pattern, different seeds (usually) differ, and
// hits on other sites do not perturb the draw sequence.
func TestProbDeterministic(t *testing.T) {
	pattern := func(seed int64, interleave bool) []bool {
		restore := Arm(Schedule{Seed: seed, Rules: []Rule{{Site: "p", Prob: 0.5}}})
		defer restore()
		var out []bool
		for i := 0; i < 64; i++ {
			if interleave {
				_ = Hit("unrelated")
			}
			out = append(out, Hit("p") != nil)
		}
		return out
	}
	a, b := pattern(7, false), pattern(7, false)
	c := pattern(7, true)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] != c[i] {
			t.Fatalf("unrelated-site hits perturbed the draw at hit %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.5 fired %d/%d times — generator not drawing", fired, len(a))
	}
}

func TestPanicMode(t *testing.T) {
	restore := Arm(Schedule{Rules: []Rule{{Site: "b", Mode: ModePanic, Nth: 1}}})
	defer restore()
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("ModePanic did not panic")
		}
		fe, ok := v.(*Error)
		if !ok || fe.Site != "b" {
			t.Fatalf("panic value = %v, want *Error for site b", v)
		}
	}()
	_ = Hit("b")
}

func TestLatencyMode(t *testing.T) {
	restore := Arm(Schedule{Rules: []Rule{{Site: "l", Mode: ModeLatency, Delay: 20 * time.Millisecond, Nth: 1}}})
	defer restore()
	start := time.Now()
	if err := Hit("l"); err != nil {
		t.Fatalf("latency mode returned error %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("latency hit returned after %v, want >= 20ms", d)
	}
}

// TestRuleOrder: multiple rules on one site apply first-match per hit.
func TestRuleOrder(t *testing.T) {
	restore := Arm(Schedule{Rules: []Rule{
		{Site: "m", Nth: 2},
		{Site: "m", Nth: 4},
	}})
	defer restore()
	var fails []int
	for i := 1; i <= 5; i++ {
		if Hit("m") != nil {
			fails = append(fails, i)
		}
	}
	if len(fails) != 2 || fails[0] != 2 || fails[1] != 4 {
		t.Fatalf("fired at %v, want [2 4]", fails)
	}
}
