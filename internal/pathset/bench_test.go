package pathset

import (
	"testing"

	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/path"
)

// benchPaths materializes every 1- and 2-hop path of a synthetic graph.
func benchPaths(b *testing.B) []path.Path {
	b.Helper()
	g := ldbc.MustGenerate(ldbc.Config{
		Persons: 50, Messages: 50, KnowsPerPerson: 3, LikesPerPerson: 2,
		CycleFraction: 0.2, Seed: 3,
	})
	var out []path.Path
	for i := 0; i < g.NumEdges(); i++ {
		p := path.FromEdge(g, graph.EdgeID(i))
		out = append(out, p)
		for _, e2 := range g.Out(p.Last()) {
			out = append(out, p.Extend(g, e2))
		}
	}
	return out
}

func BenchmarkAdd(b *testing.B) {
	paths := benchPaths(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(len(paths))
		for _, p := range paths {
			s.Add(p)
		}
	}
}

func BenchmarkContains(b *testing.B) {
	paths := benchPaths(b)
	s := FromPaths(paths...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range paths {
			if !s.Contains(p) {
				b.Fatal("missing path")
			}
		}
	}
}

func BenchmarkUnion(b *testing.B) {
	paths := benchPaths(b)
	half := len(paths) / 2
	s1 := FromPaths(paths[:half]...)
	s2 := FromPaths(paths[half/2:]...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Union(s1, s2)
	}
}

func BenchmarkSorted(b *testing.B) {
	s := FromPaths(benchPaths(b)...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sorted()
	}
}

// BenchmarkAddColliding measures the worst case of the fingerprint index:
// every insert lands in one overflowing bucket and pays the linear
// exact-Equal fallback.
func BenchmarkAddColliding(b *testing.B) {
	paths := benchPaths(b)[:200]
	for i, p := range paths {
		paths[i] = path.ForceFingerprint(p, 42)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(len(paths))
		for _, p := range paths {
			s.Add(p)
		}
	}
}
