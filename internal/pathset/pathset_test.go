package pathset

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/path"
)

func samplePaths(t *testing.T) (ps []path.Path, format func(*Set) string) {
	t.Helper()
	g := ldbc.Figure1()
	ps = []path.Path{
		path.MustFromKeys(g, "n1"),
		path.MustFromKeys(g, "n1", "e1", "n2"),
		path.MustFromKeys(g, "n2", "e2", "n3"),
		path.MustFromKeys(g, "n1", "e1", "n2", "e2", "n3"),
		path.MustFromKeys(g, "n2", "e4", "n4"),
	}
	return ps, func(s *Set) string { return s.Format(g) }
}

func TestAddAndDedup(t *testing.T) {
	ps, _ := samplePaths(t)
	s := New(0)
	for _, p := range ps {
		if !s.Add(p) {
			t.Errorf("first Add of %s returned false", p)
		}
	}
	for _, p := range ps {
		if s.Add(p) {
			t.Errorf("duplicate Add of %s returned true", p)
		}
	}
	if s.Len() != len(ps) {
		t.Errorf("Len = %d, want %d", s.Len(), len(ps))
	}
}

func TestZeroValueReady(t *testing.T) {
	ps, _ := samplePaths(t)
	var s Set
	if !s.Add(ps[0]) {
		t.Error("Add to zero Set failed")
	}
	if !s.Contains(ps[0]) {
		t.Error("Contains after Add on zero Set failed")
	}
}

func TestInsertionOrder(t *testing.T) {
	ps, _ := samplePaths(t)
	s := FromPaths(ps...)
	got := s.Paths()
	for i := range ps {
		if !got[i].Equal(ps[i]) {
			t.Fatalf("iteration order broken at %d", i)
		}
	}
	if !s.At(1).Equal(ps[1]) {
		t.Error("At(1) mismatch")
	}
}

func TestUnionIntersectMinus(t *testing.T) {
	ps, _ := samplePaths(t)
	a := FromPaths(ps[0], ps[1], ps[2])
	b := FromPaths(ps[2], ps[3])
	u := Union(a, b)
	if u.Len() != 4 {
		t.Errorf("Union len = %d, want 4", u.Len())
	}
	i := Intersect(a, b)
	if i.Len() != 1 || !i.Contains(ps[2]) {
		t.Errorf("Intersect = %d paths, want exactly {ps[2]}", i.Len())
	}
	m := Minus(a, b)
	if m.Len() != 2 || m.Contains(ps[2]) {
		t.Errorf("Minus = %d paths, should drop ps[2]", m.Len())
	}
	// Union must not mutate inputs.
	if a.Len() != 3 || b.Len() != 2 {
		t.Error("Union mutated its inputs")
	}
}

func TestFilterCloneEqual(t *testing.T) {
	ps, _ := samplePaths(t)
	s := FromPaths(ps...)
	onlyLen1 := s.Filter(func(p path.Path) bool { return p.Len() == 1 })
	if onlyLen1.Len() != 3 {
		t.Errorf("Filter len = %d, want 3", onlyLen1.Len())
	}
	c := s.Clone()
	if !c.Equal(s) {
		t.Error("Clone not Equal to original")
	}
	c.Add(path.MustFromKeys(ldbc.Figure1(), "n5"))
	if c.Equal(s) {
		t.Error("Clone shares state with original")
	}
	if s.Equal(onlyLen1) {
		t.Error("different sets reported Equal")
	}
	// Equal is order-insensitive.
	rev := New(s.Len())
	paths := s.Paths()
	for i := len(paths) - 1; i >= 0; i-- {
		rev.Add(paths[i])
	}
	if !rev.Equal(s) {
		t.Error("Equal must ignore order")
	}
}

func TestSortAndFormat(t *testing.T) {
	ps, format := samplePaths(t)
	s := FromPaths(ps[3], ps[0], ps[4], ps[1], ps[2])
	sorted := s.Sorted()
	prev := -1
	for _, p := range sorted.Paths() {
		if p.Len() < prev {
			t.Fatal("Sorted not ordered by length")
		}
		prev = p.Len()
	}
	// Sorted must not affect the original insertion order.
	if !s.At(0).Equal(ps[3]) {
		t.Error("Sorted mutated the original")
	}
	text := format(s)
	lines := strings.Split(text, "\n")
	if len(lines) != 5 {
		t.Fatalf("Format produced %d lines, want 5", len(lines))
	}
	if lines[0] != "(n1)" {
		t.Errorf("first formatted line = %q, want (n1)", lines[0])
	}
}

// Property: a set never contains duplicates and Len matches distinct
// insertions, regardless of insertion pattern.
func TestSetInvariant(t *testing.T) {
	g := ldbc.Figure1()
	universe := []path.Path{
		path.MustFromKeys(g, "n1"),
		path.MustFromKeys(g, "n2"),
		path.MustFromKeys(g, "n3"),
		path.MustFromKeys(g, "n1", "e1", "n2"),
		path.MustFromKeys(g, "n2", "e2", "n3"),
		path.MustFromKeys(g, "n3", "e3", "n2"),
		path.MustFromKeys(g, "n2", "e4", "n4"),
		path.MustFromKeys(g, "n1", "e1", "n2", "e2", "n3"),
	}
	f := func(picks []uint8) bool {
		s := New(0)
		distinct := make(map[string]bool)
		for _, pick := range picks {
			p := universe[int(pick)%len(universe)]
			added := s.Add(p)
			if added == distinct[p.Key()] {
				return false // Add result must reflect prior membership
			}
			distinct[p.Key()] = true
		}
		return s.Len() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

// Property: Union is commutative and idempotent up to set equality.
func TestUnionProperties(t *testing.T) {
	g := ldbc.Figure1()
	universe := []path.Path{
		path.MustFromKeys(g, "n1"),
		path.MustFromKeys(g, "n2"),
		path.MustFromKeys(g, "n1", "e1", "n2"),
		path.MustFromKeys(g, "n2", "e2", "n3"),
		path.MustFromKeys(g, "n2", "e4", "n4"),
	}
	build := func(picks []uint8) *Set {
		s := New(0)
		for _, pick := range picks {
			s.Add(universe[int(pick)%len(universe)])
		}
		return s
	}
	f := func(xs, ys []uint8) bool {
		a, b := build(xs), build(ys)
		ab, ba := Union(a, b), Union(b, a)
		return ab.Equal(ba) && Union(a, a).Equal(a) && ab.Len() >= a.Len() && ab.Len() >= b.Len()
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

// collide returns the sample paths all forced onto one fingerprint, so
// every insert after the first exercises the exact-Equal fallback.
func collide(ps []path.Path) []path.Path {
	out := make([]path.Path, len(ps))
	for i, p := range ps {
		out[i] = path.ForceFingerprint(p, 0xc0111de)
	}
	return out
}

// TestCollisionFallback injects deliberate fingerprint collisions and
// checks that the bucketed index stays an exact set: distinct paths are
// all kept, duplicates are still dropped, and the process-wide collision
// counter records the fallback activations.
func TestCollisionFallback(t *testing.T) {
	ps, _ := samplePaths(t)
	forced := collide(ps)
	before := Collisions()
	s := New(0)
	for _, p := range forced {
		if !s.Add(p) {
			t.Errorf("first Add of colliding %s returned false", p)
		}
	}
	if s.Len() != len(forced) {
		t.Fatalf("Len = %d, want %d distinct colliding paths", s.Len(), len(forced))
	}
	for _, p := range forced {
		if s.Add(p) {
			t.Errorf("duplicate Add of colliding %s returned true", p)
		}
		if !s.Contains(p) {
			t.Errorf("Contains(%s) = false after Add", p)
		}
	}
	// len-1 fallback activations on first insertion; duplicate re-Adds and
	// Contains probes don't count.
	if got := Collisions() - before; got != int64(len(forced)-1) {
		t.Errorf("Collisions delta = %d, want %d", got, len(forced)-1)
	}
}

// TestCollisionSurvivesSortAndClone checks that the positional index is
// rebuilt correctly by Sort and Clone even when buckets overflow.
func TestCollisionSurvivesSortAndClone(t *testing.T) {
	ps, _ := samplePaths(t)
	s := FromPaths(collide(ps)...)
	for _, derived := range []*Set{s.Sorted(), s.Clone()} {
		if derived.Len() != len(ps) {
			t.Fatalf("derived Len = %d, want %d", derived.Len(), len(ps))
		}
		for _, p := range collide(ps) {
			if !derived.Contains(p) {
				t.Errorf("derived set lost %s", p)
			}
			if derived.Add(p) {
				t.Errorf("derived set re-admitted duplicate %s", p)
			}
		}
	}
}

// TestSortRebuildsIndex is the regression test for the positional index:
// after Sort permutes the path slice, membership queries must still answer
// from the right positions.
func TestSortRebuildsIndex(t *testing.T) {
	ps, _ := samplePaths(t)
	s := FromPaths(ps...)
	s.Sort()
	for _, p := range ps {
		if !s.Contains(p) {
			t.Errorf("Contains(%s) = false after Sort", p)
		}
		if s.Add(p) {
			t.Errorf("Add(%s) re-admitted a member after Sort", p)
		}
	}
}
