package pathset

import (
	"testing"

	"pathalgebra/internal/path"
)

func TestReset(t *testing.T) {
	ps, _ := samplePaths(t)
	s := New(0)
	for _, p := range ps {
		s.Add(p)
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", s.Len())
	}
	for _, p := range ps {
		if s.Contains(p) {
			t.Errorf("Reset set still contains %s", p)
		}
	}
	// The set is fully reusable: re-adding reports new insertions and the
	// index answers membership again.
	for _, p := range ps {
		if !s.Add(p) {
			t.Errorf("Add of %s after Reset returned false", p)
		}
	}
	if s.Len() != len(ps) {
		t.Errorf("Len after refill = %d, want %d", s.Len(), len(ps))
	}
}

func TestMerge(t *testing.T) {
	ps, _ := samplePaths(t)
	a := FromPaths(ps[0], ps[1])
	b := FromPaths(ps[2])
	c := FromPaths(ps[3], ps[4])
	got := Merge(a, nil, b, c)
	if got.Len() != len(ps) {
		t.Fatalf("Len = %d, want %d", got.Len(), len(ps))
	}
	// Deterministic: shard order is insertion order.
	for i, p := range ps {
		if !got.At(i).Equal(p) {
			t.Errorf("position %d = %s, want %s", i, got.At(i), p)
		}
	}
	// Merge dedupes across shards like AddAll.
	dup := Merge(a, a, b)
	if dup.Len() != 3 {
		t.Errorf("duplicate merge Len = %d, want 3", dup.Len())
	}
}

// TestFromOrderedDisjoint: the no-probe merge is indistinguishable from
// repeated Add calls in the same order.
func TestFromOrderedDisjoint(t *testing.T) {
	ps, _ := samplePaths(t)
	got := FromOrderedDisjoint([][]path.Path{ps[:2], ps[2:3], nil, ps[3:]})
	want := FromPaths(ps...)
	if got.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), want.Len())
	}
	for i, p := range want.Paths() {
		if !got.At(i).Equal(p) {
			t.Errorf("position %d = %s, want %s", i, got.At(i), p)
		}
	}
	// The index is live: membership and post-merge Add behave normally.
	for _, p := range ps {
		if !got.Contains(p) {
			t.Errorf("missing %s", p)
		}
		if got.Add(p) {
			t.Errorf("Add of existing %s returned true", p)
		}
	}
}
