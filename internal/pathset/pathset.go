// Package pathset provides the central data structure of the path algebra:
// a duplicate-free set of paths. Every core and recursive algebra operator
// consumes and produces values of this type (the algebra is closed under
// sets of paths, §3), which is what gives the algebra composability.
//
// Iteration order is insertion order, so evaluation is deterministic; Sort
// re-orders into the canonical (length, sequence) order used for output.
package pathset

import (
	"sort"
	"strings"

	"pathalgebra/internal/graph"
	"pathalgebra/internal/path"
)

// Set is an ordered, duplicate-free collection of paths. The zero Set is
// empty and ready to use, but New pre-sizes the index.
type Set struct {
	paths []path.Path
	index map[string]struct{}
}

// New returns an empty set with capacity for n paths.
func New(n int) *Set {
	return &Set{
		paths: make([]path.Path, 0, n),
		index: make(map[string]struct{}, n),
	}
}

// FromPaths builds a set from the given paths, dropping duplicates.
func FromPaths(ps ...path.Path) *Set {
	s := New(len(ps))
	for _, p := range ps {
		s.Add(p)
	}
	return s
}

// Len returns the number of distinct paths.
func (s *Set) Len() int { return len(s.paths) }

// Add inserts p unless an equal path is present. It reports whether the
// path was newly inserted.
func (s *Set) Add(p path.Path) bool {
	if s.index == nil {
		s.index = make(map[string]struct{})
	}
	k := p.Key()
	if _, dup := s.index[k]; dup {
		return false
	}
	s.index[k] = struct{}{}
	s.paths = append(s.paths, p)
	return true
}

// Contains reports whether an equal path is in the set.
func (s *Set) Contains(p path.Path) bool {
	_, ok := s.index[p.Key()]
	return ok
}

// Paths returns the underlying slice in insertion order. The slice is
// shared; callers must not modify it.
func (s *Set) Paths() []path.Path { return s.paths }

// At returns the i-th path in insertion order.
func (s *Set) At(i int) path.Path { return s.paths[i] }

// AddAll inserts every path of t into s.
func (s *Set) AddAll(t *Set) {
	for _, p := range t.paths {
		s.Add(p)
	}
}

// Union returns a new set containing the paths of s followed by the new
// paths of t (the algebra's ∪ operator, duplicate-eliminating).
func Union(s, t *Set) *Set {
	out := New(s.Len() + t.Len())
	out.AddAll(s)
	out.AddAll(t)
	return out
}

// Intersect returns the paths present in both sets, in s's order.
func Intersect(s, t *Set) *Set {
	out := New(min(s.Len(), t.Len()))
	for _, p := range s.paths {
		if t.Contains(p) {
			out.Add(p)
		}
	}
	return out
}

// Minus returns the paths of s not present in t, in s's order.
func Minus(s, t *Set) *Set {
	out := New(s.Len())
	for _, p := range s.paths {
		if !t.Contains(p) {
			out.Add(p)
		}
	}
	return out
}

// Filter returns the paths satisfying keep, preserving order.
func (s *Set) Filter(keep func(path.Path) bool) *Set {
	out := New(s.Len())
	for _, p := range s.paths {
		if keep(p) {
			out.Add(p)
		}
	}
	return out
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	out := New(s.Len())
	out.AddAll(s)
	return out
}

// Equal reports whether s and t contain exactly the same paths,
// irrespective of order.
func (s *Set) Equal(t *Set) bool {
	if s.Len() != t.Len() {
		return false
	}
	for _, p := range s.paths {
		if !t.Contains(p) {
			return false
		}
	}
	return true
}

// Sort re-orders the set in place into the canonical (length, node
// sequence, edge sequence) order.
func (s *Set) Sort() {
	sort.SliceStable(s.paths, func(i, j int) bool {
		return path.Compare(s.paths[i], s.paths[j]) < 0
	})
}

// Sorted returns a canonical-order copy, leaving s untouched.
func (s *Set) Sorted() *Set {
	out := s.Clone()
	out.Sort()
	return out
}

// Format renders the set one path per line in canonical order, using the
// graph's external keys. Used by tests, the CLI and the papertables tool.
func (s *Set) Format(g *graph.Graph) string {
	c := s.Sorted()
	var sb strings.Builder
	for i, p := range c.paths {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(p.Format(g))
	}
	return sb.String()
}
