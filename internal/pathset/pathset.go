// Package pathset provides the central data structure of the path algebra:
// a duplicate-free set of paths. Every core and recursive algebra operator
// consumes and produces values of this type (the algebra is closed under
// sets of paths, §3), which is what gives the algebra composability.
//
// Duplicate elimination is fingerprint-based: the index maps each path's
// 64-bit structural hash (path.Fingerprint) to the slice positions of the
// paths bearing it, and membership falls back to exact path.Equal inside a
// bucket, so hash collisions cost a comparison but never an answer. No key
// strings are materialized. Fallback activations are counted process-wide
// (Collisions) so the collision path stays observable.
//
// Iteration order is insertion order, so evaluation is deterministic; Sort
// re-orders into the canonical (length, sequence) order used for output.
package pathset

import (
	"sort"
	"strings"
	"sync/atomic"

	"pathalgebra/internal/graph"
	"pathalgebra/internal/path"
)

// collisionCount tallies, process-wide, how many times an insert landed in
// a non-empty fingerprint bucket — i.e. how often the exact-Equal fallback
// had to disambiguate. It is a correctness observability hook: a sane run
// keeps it at (or within a hair of) zero.
var collisionCount atomic.Int64

// Collisions returns the process-wide count of fingerprint-bucket fallback
// activations since program start.
func Collisions() int64 { return collisionCount.Load() }

// Set is an ordered, duplicate-free collection of paths. The zero Set is
// empty and ready to use, but New pre-sizes the index.
type Set struct {
	paths []path.Path
	// index maps a fingerprint to the position in paths of the first path
	// bearing it. Values live inline in the map, so the collision-free
	// common case does no per-entry allocation.
	index map[uint64]int32
	// overflow holds the positions of further paths sharing a fingerprint
	// already in index. It stays nil until the first collision.
	overflow map[uint64][]int32
	// slab backs the storage of paths materialized out of an arena by
	// AddArena, so admitting k paths costs O(k·L/block) allocations
	// instead of two slices per path. Paths in the set alias it; it is
	// never reused after Reset.
	slab path.Slab
}

// New returns an empty set with capacity for n paths.
func New(n int) *Set {
	return &Set{
		paths: make([]path.Path, 0, n),
		index: make(map[uint64]int32, n),
	}
}

// FromPaths builds a set from the given paths, dropping duplicates.
func FromPaths(ps ...path.Path) *Set {
	s := New(len(ps))
	for _, p := range ps {
		s.Add(p)
	}
	return s
}

// Len returns the number of distinct paths.
func (s *Set) Len() int { return len(s.paths) }

// Add inserts p unless an equal path is present. It reports whether the
// path was newly inserted.
func (s *Set) Add(p path.Path) bool {
	if s.index == nil {
		s.index = make(map[uint64]int32)
	}
	fp := p.Fingerprint()
	pos := int32(len(s.paths))
	if i, taken := s.index[fp]; taken {
		if s.paths[i].Equal(p) {
			return false
		}
		for _, j := range s.overflow[fp] {
			if s.paths[j].Equal(p) {
				return false
			}
		}
		collisionCount.Add(1)
		if s.overflow == nil {
			s.overflow = make(map[uint64][]int32)
		}
		s.overflow[fp] = append(s.overflow[fp], pos)
	} else {
		s.index[fp] = pos
	}
	s.paths = append(s.paths, p)
	return true
}

// AddArena inserts the arena-resident path at r unless an equal path is
// present, reporting whether it was newly inserted. The path is
// materialized (nodes/edges slices allocated) only when genuinely new —
// membership probes walk the arena's parent chain against the candidate
// bucket — so the evaluation hot loops pay slice allocations exactly once
// per admitted result path and never for duplicates.
func (s *Set) AddArena(a *path.Arena, r path.Ref) bool {
	if s.index == nil {
		s.index = make(map[uint64]int32)
	}
	fp := a.Fingerprint(r)
	pos := int32(len(s.paths))
	if i, taken := s.index[fp]; taken {
		if a.EqualPath(r, s.paths[i]) {
			return false
		}
		for _, j := range s.overflow[fp] {
			if a.EqualPath(r, s.paths[j]) {
				return false
			}
		}
		collisionCount.Add(1)
		if s.overflow == nil {
			s.overflow = make(map[uint64][]int32)
		}
		s.overflow[fp] = append(s.overflow[fp], pos)
	} else {
		s.index[fp] = pos
	}
	s.paths = append(s.paths, a.PathSlab(r, &s.slab))
	return true
}

// AddArenaReversed inserts the REVERSE of the arena-resident path at r
// unless an equal path is present, reporting whether it was newly
// inserted. It is AddArena for the backward product search, whose arena
// chains hold paths last-node-first: membership probes and the admitted
// path both use the canonical forward fingerprint, so sets filled this
// way are indistinguishable from forward-filled ones.
func (s *Set) AddArenaReversed(a *path.Arena, r path.Ref) bool {
	if s.index == nil {
		s.index = make(map[uint64]int32)
	}
	fp := a.ReversedFingerprint(r)
	pos := int32(len(s.paths))
	if i, taken := s.index[fp]; taken {
		if a.ReversedEqualPath(r, s.paths[i]) {
			return false
		}
		for _, j := range s.overflow[fp] {
			if a.ReversedEqualPath(r, s.paths[j]) {
				return false
			}
		}
		collisionCount.Add(1)
		if s.overflow == nil {
			s.overflow = make(map[uint64][]int32)
		}
		s.overflow[fp] = append(s.overflow[fp], pos)
	} else {
		s.index[fp] = pos
	}
	s.paths = append(s.paths, a.ReversedPathSlab(r, &s.slab, fp))
	return true
}

// Contains reports whether an equal path is in the set.
func (s *Set) Contains(p path.Path) bool {
	fp := p.Fingerprint()
	i, taken := s.index[fp]
	if !taken {
		return false
	}
	if s.paths[i].Equal(p) {
		return true
	}
	for _, j := range s.overflow[fp] {
		if s.paths[j].Equal(p) {
			return true
		}
	}
	return false
}

// Paths returns the underlying slice in insertion order. The slice is
// shared; callers must not modify it.
func (s *Set) Paths() []path.Path { return s.paths }

// At returns the i-th path in insertion order.
func (s *Set) At(i int) path.Path { return s.paths[i] }

// AddAll inserts every path of t into s.
func (s *Set) AddAll(t *Set) {
	for _, p := range t.paths {
		s.Add(p)
	}
}

// Reset empties the set while keeping its allocated storage (the paths
// slice and the fingerprint index map), so hot loops — e.g. the per-source
// visited sets of the sharded product search — reuse one set per worker
// instead of reallocating per source.
func (s *Set) Reset() {
	s.paths = s.paths[:0]
	clear(s.index)
	s.overflow = nil
	// The slab is dropped, not truncated: previously returned paths may
	// still alias its blocks.
	s.slab = path.Slab{}
}

// Merge builds one set containing the paths of every shard in argument
// order, pre-sized to the summed shard lengths and deduplicating across
// shards. It is the general-purpose companion of FromOrderedDisjoint:
// use Merge when shards may overlap; the sharded evaluators, whose
// shards provably partition the result, use FromOrderedDisjoint instead.
func Merge(shards ...*Set) *Set {
	n := 0
	for _, sh := range shards {
		if sh != nil {
			n += sh.Len()
		}
	}
	out := New(n)
	for _, sh := range shards {
		if sh != nil {
			out.AddAll(sh)
		}
	}
	return out
}

// FromOrderedDisjoint builds a set by concatenating pre-deduplicated path
// groups in argument order. The caller guarantees the groups are mutually
// disjoint and internally duplicate-free — true of shard outputs of a
// source-partitioned search, where every path belongs to the shard of its
// first node. Each path is indexed exactly once (no membership probe), so
// this is the cheap merge for the sharded evaluators; the resulting set
// is indistinguishable from repeated Add calls in the same order.
func FromOrderedDisjoint(groups [][]path.Path) *Set {
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	s := &Set{paths: make([]path.Path, 0, n)}
	for _, g := range groups {
		s.paths = append(s.paths, g...)
	}
	s.reindex()
	return s
}

// Union returns a new set containing the paths of s followed by the new
// paths of t (the algebra's ∪ operator, duplicate-eliminating).
func Union(s, t *Set) *Set {
	out := New(s.Len() + t.Len())
	out.AddAll(s)
	out.AddAll(t)
	return out
}

// Intersect returns the paths present in both sets, in s's order.
func Intersect(s, t *Set) *Set {
	out := New(min(s.Len(), t.Len()))
	for _, p := range s.paths {
		if t.Contains(p) {
			out.Add(p)
		}
	}
	return out
}

// Minus returns the paths of s not present in t, in s's order.
func Minus(s, t *Set) *Set {
	out := New(s.Len())
	for _, p := range s.paths {
		if !t.Contains(p) {
			out.Add(p)
		}
	}
	return out
}

// Filter returns the paths satisfying keep, preserving order.
func (s *Set) Filter(keep func(path.Path) bool) *Set {
	out := New(s.Len())
	for _, p := range s.paths {
		if keep(p) {
			out.Add(p)
		}
	}
	return out
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	out := &Set{paths: append([]path.Path(nil), s.paths...)}
	out.reindex()
	return out
}

// reindex rebuilds the fingerprint index from the paths slice, which is
// assumed duplicate-free already (so no collision accounting here: any
// shared-fingerprint bucket was counted when it first formed).
func (s *Set) reindex() {
	s.index = make(map[uint64]int32, len(s.paths))
	s.overflow = nil
	for i, p := range s.paths {
		fp := p.Fingerprint()
		if _, taken := s.index[fp]; taken {
			if s.overflow == nil {
				s.overflow = make(map[uint64][]int32)
			}
			s.overflow[fp] = append(s.overflow[fp], int32(i))
		} else {
			s.index[fp] = int32(i)
		}
	}
}

// Equal reports whether s and t contain exactly the same paths,
// irrespective of order.
func (s *Set) Equal(t *Set) bool {
	if s.Len() != t.Len() {
		return false
	}
	for _, p := range s.paths {
		if !t.Contains(p) {
			return false
		}
	}
	return true
}

// Sort re-orders the set in place into the canonical (length, node
// sequence, edge sequence) order. The positional index is rebuilt to match.
func (s *Set) Sort() {
	sort.SliceStable(s.paths, func(i, j int) bool {
		return path.Compare(s.paths[i], s.paths[j]) < 0
	})
	s.reindex()
}

// Sorted returns a canonical-order copy, leaving s untouched. The copy is
// sorted before its index is built, so it pays one reindex, not two.
func (s *Set) Sorted() *Set {
	out := &Set{paths: append([]path.Path(nil), s.paths...)}
	sort.SliceStable(out.paths, func(i, j int) bool {
		return path.Compare(out.paths[i], out.paths[j]) < 0
	})
	out.reindex()
	return out
}

// Format renders the set one path per line in canonical order, using the
// graph's external keys. Used by tests, the CLI and the papertables tool.
func (s *Set) Format(g *graph.Graph) string {
	c := s.Sorted()
	var sb strings.Builder
	for i, p := range c.paths {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(p.Format(g))
	}
	return sb.String()
}
