#!/usr/bin/env sh
# check_allocs.sh — allocation-regression gate for the evaluation hot path.
#
# Runs the restrictor benchmark suite with -benchmem and fails if
# allocs/op on BenchmarkRestrictors/Walk exceeds the committed threshold.
# The threshold is allocation *count*, which is stable across hosts and
# CPU speeds (unlike ns/op), so this is safe to enforce in CI: the
# copy-free path core (prefix-sharing arena + slab materialization) keeps
# Walk at ~1.6k allocs/op; the pre-arena representation sat at ~11.6k.
# A breach means per-candidate copying or per-classify map building crept
# back into the product search.
set -eu

THRESHOLD=${ALLOCS_THRESHOLD:-4000}
PLANCACHE_THRESHOLD=${PLANCACHE_ALLOCS_THRESHOLD:-64}

out=$(go test -run xxx -bench 'BenchmarkRestrictors$/Walk' -benchtime 1x -benchmem . 2>&1)
printf '%s\n' "$out"

allocs=$(printf '%s\n' "$out" | awk '/^BenchmarkRestrictors\/Walk/ { for (i = 1; i < NF; i++) if ($(i+1) == "allocs/op") print $i }')
if [ -z "$allocs" ]; then
    echo "check_allocs: could not find BenchmarkRestrictors/Walk allocs/op in benchmark output" >&2
    exit 1
fi
if [ "$allocs" -gt "$THRESHOLD" ]; then
    echo "check_allocs: BenchmarkRestrictors/Walk allocates $allocs allocs/op > threshold $THRESHOLD" >&2
    exit 1
fi
echo "check_allocs: BenchmarkRestrictors/Walk allocates $allocs allocs/op (threshold $THRESHOLD)"

# Planner gate: the plan-cache hit path must stay cheap (a key hash plus
# an LRU bump — no re-optimization) and strictly cheaper than planning
# from cold. -benchtime 20x amortizes the one-off warmup fixture.
out=$(go test -run xxx -bench 'BenchmarkPlanCache' -benchtime 20x -benchmem . 2>&1)
printf '%s\n' "$out"

cold=$(printf '%s\n' "$out" | awk '/^BenchmarkPlanCache\/cold/ { for (i = 1; i < NF; i++) if ($(i+1) == "allocs/op") print $i }')
hit=$(printf '%s\n' "$out" | awk '/^BenchmarkPlanCache\/hit/ { for (i = 1; i < NF; i++) if ($(i+1) == "allocs/op") print $i }')
if [ -z "$cold" ] || [ -z "$hit" ]; then
    echo "check_allocs: could not find BenchmarkPlanCache allocs/op in benchmark output" >&2
    exit 1
fi
if [ "$hit" -gt "$PLANCACHE_THRESHOLD" ]; then
    echo "check_allocs: plan-cache hit path allocates $hit allocs/op > threshold $PLANCACHE_THRESHOLD" >&2
    exit 1
fi
if [ "$hit" -ge "$cold" ]; then
    echo "check_allocs: plan-cache hit path ($hit allocs/op) is not cheaper than cold planning ($cold allocs/op)" >&2
    exit 1
fi
echo "check_allocs: plan-cache hit path allocates $hit allocs/op vs $cold cold (threshold $PLANCACHE_THRESHOLD)"

# Streaming gate: chunked delivery (RunStream paged to exhaustion) must
# stay within a small constant number of extra allocations over the
# equivalent batch Run — chunks are zero-copy views into the evaluated
# set, so the only legitimate overhead is the per-chunk set headers and
# the stream bookkeeping. A breach means chunking started copying paths.
STREAM_THRESHOLD=${STREAM_ALLOCS_THRESHOLD:-300}

out=$(go test -run xxx -bench 'BenchmarkStreamDelivery' -benchtime 20x -benchmem . 2>&1)
printf '%s\n' "$out"

batch=$(printf '%s\n' "$out" | awk '/^BenchmarkStreamDelivery\/batch/ { for (i = 1; i < NF; i++) if ($(i+1) == "allocs/op") print $i }')
stream=$(printf '%s\n' "$out" | awk '/^BenchmarkStreamDelivery\/stream/ { for (i = 1; i < NF; i++) if ($(i+1) == "allocs/op") print $i }')
if [ -z "$batch" ] || [ -z "$stream" ]; then
    echo "check_allocs: could not find BenchmarkStreamDelivery allocs/op in benchmark output" >&2
    exit 1
fi
extra=$((stream - batch))
if [ "$extra" -gt "$STREAM_THRESHOLD" ]; then
    echo "check_allocs: streaming delivery allocates $extra allocs/op over batch ($stream vs $batch) > threshold $STREAM_THRESHOLD" >&2
    exit 1
fi
echo "check_allocs: streaming delivery allocates $extra allocs/op over batch ($stream vs $batch, threshold $STREAM_THRESHOLD)"

# Live-store gate: a store whose delta is empty (post-compaction, ov ==
# nil) must evaluate with EXACTLY the allocation profile of a from-scratch
# sealed CSR — the overlay is a nil-check on the read path, nothing more.
# Any drift means epoch plumbing started taxing sealed reads.
out=$(go test -run xxx -bench 'BenchmarkSnapshotOverlayRead/(sealed|empty-delta)' -benchtime 5x -benchmem . 2>&1)
printf '%s\n' "$out"

sealed=$(printf '%s\n' "$out" | awk '/^BenchmarkSnapshotOverlayRead\/sealed/ { for (i = 1; i < NF; i++) if ($(i+1) == "allocs/op") print $i }')
empty=$(printf '%s\n' "$out" | awk '/^BenchmarkSnapshotOverlayRead\/empty-delta/ { for (i = 1; i < NF; i++) if ($(i+1) == "allocs/op") print $i }')
if [ -z "$sealed" ] || [ -z "$empty" ]; then
    echo "check_allocs: could not find BenchmarkSnapshotOverlayRead allocs/op in benchmark output" >&2
    exit 1
fi
if [ "$empty" -ne "$sealed" ]; then
    echo "check_allocs: empty-delta read path allocates $empty allocs/op vs sealed $sealed — overlay is no longer free when the delta is empty" >&2
    exit 1
fi
echo "check_allocs: empty-delta read path at sealed parity ($empty allocs/op)"

# Fault-registry gate: a disarmed fault point (the production state of
# every fault.Hit seam — WAL appends, fsyncs, compaction swaps, worker
# loops, HTTP writes) must cost exactly one atomic load plus a nil
# check: ZERO allocations, no tolerance. Any drift means the injection
# registry started taxing paths it exists to instrument.
out=$(go test -run xxx -bench 'BenchmarkDisarmedHit' -benchtime 100000x -benchmem ./internal/fault 2>&1)
printf '%s\n' "$out"

disarmed=$(printf '%s\n' "$out" | awk '/^BenchmarkDisarmedHit/ { for (i = 1; i < NF; i++) if ($(i+1) == "allocs/op") print $i }')
if [ -z "$disarmed" ]; then
    echo "check_allocs: could not find BenchmarkDisarmedHit allocs/op in benchmark output" >&2
    exit 1
fi
if [ "$disarmed" -ne 0 ]; then
    echo "check_allocs: disarmed fault point allocates $disarmed allocs/op — fault.Hit must be free when no schedule is armed" >&2
    exit 1
fi
echo "check_allocs: disarmed fault points at zero-alloc parity ($disarmed allocs/op)"

# Reach-kernel gate: the bitset reachability kernel's steady state
# (Evaluator reuse via EvalInto) must run the whole multi-source BFS —
# frontier sweeps, bitset patching, pair emission — with ZERO allocations
# per evaluation, no tolerance. The kernel's entire point is path-free
# answers at bitset speed; any allocation in the hot loop means per-node
# or per-pair state crept out of the evaluator's reusable buffers.
out=$(go test -run xxx -bench 'BenchmarkReachKernelSteady' -benchtime 20x -benchmem ./internal/reach 2>&1)
printf '%s\n' "$out"

steady=$(printf '%s\n' "$out" | awk '/^BenchmarkReachKernelSteady/ { for (i = 1; i < NF; i++) if ($(i+1) == "allocs/op") print $i }')
if [ -z "$steady" ]; then
    echo "check_allocs: could not find BenchmarkReachKernelSteady allocs/op in benchmark output" >&2
    exit 1
fi
if [ "$steady" -ne 0 ]; then
    echo "check_allocs: reach-kernel steady state allocates $steady allocs/op — EvalInto must be allocation-free" >&2
    exit 1
fi
echo "check_allocs: reach-kernel steady state at zero allocs/op"

# Observability gate: disabled instrumentation must be invisible. A nil
# trace reduces the full per-query span choreography (context probe,
# starts, attrs, ends) to nil checks, and nil-registry instruments
# record for free — ZERO allocations for both, no tolerance. Any drift
# means the metrics/tracing layer started taxing every untraced query.
out=$(go test -run xxx -bench 'BenchmarkNilTraceSpan|BenchmarkDisarmedInstruments' -benchtime 100000x -benchmem ./internal/obs 2>&1)
printf '%s\n' "$out"

niltrace=$(printf '%s\n' "$out" | awk '/^BenchmarkNilTraceSpan/ { for (i = 1; i < NF; i++) if ($(i+1) == "allocs/op") print $i }')
nilinst=$(printf '%s\n' "$out" | awk '/^BenchmarkDisarmedInstruments/ { for (i = 1; i < NF; i++) if ($(i+1) == "allocs/op") print $i }')
if [ -z "$niltrace" ] || [ -z "$nilinst" ]; then
    echo "check_allocs: could not find obs nil-path allocs/op in benchmark output" >&2
    exit 1
fi
if [ "$niltrace" -ne 0 ]; then
    echo "check_allocs: nil-trace span choreography allocates $niltrace allocs/op — disabled tracing must be free" >&2
    exit 1
fi
if [ "$nilinst" -ne 0 ]; then
    echo "check_allocs: disarmed instruments allocate $nilinst allocs/op — nil-registry counters/gauges/histograms must record for free" >&2
    exit 1
fi
echo "check_allocs: disabled observability at zero-alloc parity (trace $niltrace, instruments $nilinst allocs/op)"
