// Package pathalgebra is a Go implementation of the path algebra of
// "Path-based Algebraic Foundations of Graph Query Languages" (Angles,
// Bonifati, García, Vrgoč — EDBT 2025): an algebra in which sets of paths
// are first-class values, with selection/join/union core operators, a
// recursive operator under Walk/Trail/Acyclic/Simple/Shortest semantics,
// and solution-space operators (group-by, order-by, projection) that give
// precise semantics to the selectors and restrictors of GQL and SQL/PGQ.
//
// This package is the public facade. A typical interaction:
//
//	g := pathalgebra.Figure1() // the paper's running-example graph
//	res, err := pathalgebra.Run(g,
//	    `MATCH ANY SHORTEST TRAIL p = (?x)-[:Knows+]->(?y)`,
//	    pathalgebra.RunOptions{})
//	fmt.Println(res.Format(g))
//
// Power users build plans directly from the algebra (package internal/core
// types are re-exported here), optimize them with Optimize, and execute
// them with an Engine.
package pathalgebra

import (
	"context"
	"fmt"
	"io"

	"pathalgebra/internal/cond"
	"pathalgebra/internal/core"
	"pathalgebra/internal/engine"
	"pathalgebra/internal/gql"
	"pathalgebra/internal/graph"
	"pathalgebra/internal/ldbc"
	"pathalgebra/internal/obs"
	"pathalgebra/internal/opt"
	"pathalgebra/internal/path"
	"pathalgebra/internal/pathset"
	"pathalgebra/internal/rpq"
	"pathalgebra/internal/stats"
)

// Re-exported data model types.
type (
	// Graph is an immutable property graph (Definition 2.1).
	Graph = graph.Graph
	// GraphBuilder accumulates nodes and edges into a Graph.
	GraphBuilder = graph.Builder
	// Value is a property value.
	Value = graph.Value
	// NodeID identifies a node within a Graph.
	NodeID = graph.NodeID
	// EdgeID identifies an edge within a Graph.
	EdgeID = graph.EdgeID
	// Path is an immutable path (§2.2).
	Path = path.Path
	// PathSet is a duplicate-free set of paths, the algebra's value type.
	PathSet = pathset.Set
	// SolutionSpace is the extended algebra's structured value (§5).
	SolutionSpace = core.SolutionSpace
)

// Re-exported algebra types. PathExpr/SpaceExpr trees are logical plans.
type (
	// PathExpr is an algebra expression evaluating to a PathSet.
	PathExpr = core.PathExpr
	// SpaceExpr is an algebra expression evaluating to a SolutionSpace.
	SpaceExpr = core.SpaceExpr
	// Semantics selects the path semantics of the recursive operator.
	Semantics = core.Semantics
	// Limits bounds recursive evaluation.
	Limits = core.Limits
	// Cond is a selection condition (§3.1).
	Cond = cond.Cond
	// RPQ is a regular path expression.
	RPQ = rpq.Expr
	// Query is a parsed GQL path query.
	Query = gql.Query
	// Selector is a classic GQL selector (Table 1).
	Selector = gql.Selector
	// SelectorKind enumerates the GQL selectors.
	SelectorKind = gql.SelectorKind
)

// Path semantics constants (Table 2 restrictors plus SHORTEST).
const (
	WalkSemantics     = core.Walk
	TrailSemantics    = core.Trail
	AcyclicSemantics  = core.Acyclic
	SimpleSemantics   = core.Simple
	ShortestSemantics = core.Shortest
)

// NewGraphBuilder returns an empty graph builder.
func NewGraphBuilder() *GraphBuilder { return graph.NewBuilder() }

// ReadGraphJSON loads a graph from its JSON representation.
func ReadGraphJSON(r io.Reader) (*Graph, error) { return graph.ReadJSON(r) }

// ReadGraphCSV loads a graph from node and edge CSV streams (the LDBC SNB
// interchange style; see internal/graph.ReadCSV for the header format).
func ReadGraphCSV(nodes, edges io.Reader) (*Graph, error) { return graph.ReadCSV(nodes, edges) }

// Figure1 returns the paper's running-example social network graph.
func Figure1() *Graph { return ldbc.Figure1() }

// SNBConfig parameterizes the synthetic LDBC-SNB-like graph generator.
type SNBConfig = ldbc.Config

// GenerateSNB builds a synthetic social network graph for benchmarking.
func GenerateSNB(cfg SNBConfig) (*Graph, error) { return ldbc.Generate(cfg) }

// ParseQuery parses a GQL path query (classic or extended §7.1 syntax).
func ParseQuery(query string) (*Query, error) { return gql.Parse(query) }

// CompileQuery translates a parsed query into a logical plan.
func CompileQuery(q *Query) (PathExpr, error) { return gql.Compile(q) }

// ParseRPQ parses a regular path expression such as
// "(:Knows+)|(:Likes/:Has_creator)*".
func ParseRPQ(expr string) (RPQ, error) { return rpq.Parse(expr) }

// CompileRPQ compiles a regular path expression into a logical plan under
// the given semantics (Figures 2–4).
func CompileRPQ(expr RPQ, sem Semantics) PathExpr { return rpq.Compile(expr, sem) }

// CompileSelector wraps a pattern plan in the γ/τ/π combination of the
// paper's Table 7 for the given selector.
func CompileSelector(sel Selector, in PathExpr) (PathExpr, error) {
	return gql.CompileSelector(sel, in)
}

// ParseCond parses a selection condition in the §3.1 syntax.
func ParseCond(expr string) (Cond, error) { return cond.Parse(expr) }

// Optimize rewrites a plan with the §7.3 rules, returning the optimized
// plan and the names of the rules that fired.
func Optimize(plan PathExpr) (PathExpr, []string) {
	res := opt.Optimize(plan)
	return res.Plan, res.Applied
}

// PrintPlan renders a logical plan as the §7.2 textual tree.
func PrintPlan(plan PathExpr) string { return gql.PrintPlan(plan) }

// EngineOptions configures plan execution.
type EngineOptions = engine.Options

// Engine executes logical plans against a graph. Engine.Run plans through
// the cost-based planner and LRU plan cache; Engine.EvalPaths executes a
// plan exactly as given; Engine.Explain reports the chosen plan with
// estimated vs. actual per-operator cardinalities.
type Engine = engine.Engine

// Explain is the result of Engine.Explain.
type Explain = engine.Explain

// Stream is a chunked, cancellable result cursor produced by
// Engine.RunStream: chunks concatenate to exactly the Engine.Run result,
// and cancelling the stream's context aborts the evaluation promptly.
type Stream = engine.Stream

// StreamOptions configures Engine.RunStream (chunk size).
type StreamOptions = engine.StreamOptions

// ErrBudgetExceeded is the typed, errors.Is-able error returned when a
// recursive evaluation exceeds its Limits budget — distinct from the
// cancellation causes (context.Canceled, context.DeadlineExceeded) a
// cancelled RunCtx/RunStream returns.
var ErrBudgetExceeded = core.ErrBudgetExceeded

// NewEngine returns an engine over g.
func NewEngine(g *Graph, opts EngineOptions) *Engine { return engine.New(g, opts) }

// Trace collects a per-query span tree: parse, plan, cache probe,
// per-shard evaluation and merge phases, annotated with frontier sizes,
// arena bytes and budget charges. Traces are observation-only — a traced
// evaluation returns byte-identical results.
type Trace = obs.Trace

// Span is one timed phase of a Trace. All Span methods are no-ops on a
// nil receiver, so untraced code paths thread nil spans at zero cost.
type Span = obs.Span

// NewTrace returns an empty trace. Start a root span with Trace.Start,
// thread it into an evaluation with ContextWithSpan, and render the
// result with Trace.Format or Trace.Tree.
func NewTrace() *Trace { return obs.NewTrace() }

// ContextWithSpan returns a context carrying sp: engine entry points
// called with it (RunCtx, RunStream, ReachCtx) attach their plan and
// evaluation spans beneath sp. With a nil sp, ctx is returned unchanged.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context { return obs.WithSpan(ctx, sp) }

// Live-graph types: a Store is an updatable graph — an epoch sequence of
// immutable snapshots. Apply ingests a Batch of mutations atomically and
// publishes a new epoch; Snapshot pins an epoch for reading; a background
// compactor folds accumulated deltas into fresh sealed CSR epochs.
type (
	// Store is the epoch-based live graph store.
	Store = graph.Store
	// StoreOptions configures compaction behavior.
	StoreOptions = graph.StoreOptions
	// Snapshot is a pinned, immutable epoch handle.
	Snapshot = graph.Snapshot
	// Batch is an ordered, atomic group of graph mutations.
	Batch = graph.Batch
	// Op is one mutation: add/delete of a node or edge.
	Op = graph.Op
	// OpKind enumerates the mutation kinds.
	OpKind = graph.OpKind
	// Footprint is the set of labels a plan reads — the unit of epoch-
	// aware result invalidation.
	Footprint = graph.Footprint
)

// Mutation kinds for Batch ops.
const (
	OpAddNode = graph.OpAddNode
	OpAddEdge = graph.OpAddEdge
	OpDelNode = graph.OpDelNode
	OpDelEdge = graph.OpDelEdge
)

// Typed, errors.Is-able validation errors returned by Store.Apply and the
// graph builders/loaders.
var (
	// ErrDuplicateKey reports a node or edge key that already names a live
	// object.
	ErrDuplicateKey = graph.ErrDuplicateKey
	// ErrUnknownNode reports an edge referencing a missing endpoint.
	ErrUnknownNode = graph.ErrUnknownNode
	// ErrUnknownKey reports a delete of a key that names nothing.
	ErrUnknownKey = graph.ErrUnknownKey
)

// NewStore wraps a sealed graph in a live store.
func NewStore(g *Graph, opts StoreOptions) *Store { return graph.NewStore(g, opts) }

// NewEngineWithStore returns an engine over a live store: every Run/
// Stream/Explain pins the store's current epoch for its own duration, so
// concurrent ingest and compaction never disturb a running query.
func NewEngineWithStore(s *Store, opts EngineOptions) *Engine {
	return engine.NewWithStore(s, opts)
}

// ReadBatchNDJSON parses a mutation batch from NDJSON (one op per line).
func ReadBatchNDJSON(r io.Reader) (Batch, error) { return graph.ReadBatchNDJSON(r) }

// ReadBatchCSV parses a mutation batch from CSV (header op,key,src,dst,label).
func ReadBatchCSV(r io.Reader) (Batch, error) { return graph.ReadBatchCSV(r) }

// PlanFootprint computes the label footprint of a plan — which node and
// edge labels its result can depend on.
func PlanFootprint(plan PathExpr) Footprint { return engine.PlanFootprint(plan) }

// GraphStats returns the statistics bundle computed for g at build time —
// the input of the cost-based planner.
func GraphStats(g *Graph) *stats.Stats { return g.Stats() }

// ComposeQueries implements the paper's §2.3 composition of path queries
//
//	s r [s1 r1 (x, regex1, y)] · [s2 r2 (z, regex2, w)] · ...
//
// Each sub-query is compiled with its own selector and restrictor; the
// resulting answer sets are concatenated with the path join; the outer
// restrictor is applied as a filter (ρ) over the concatenated set — for
// Shortest it keeps the minimal-length concatenations per endpoint pair —
// and finally the outer selector's Table 7 pipeline runs on top. This is
// the feature the paper notes current query languages lose: the output of
// one path query is a set of paths the next operator consumes directly.
func ComposeQueries(outer Selector, restrictor Semantics, subs ...*Query) (PathExpr, error) {
	if len(subs) == 0 {
		return nil, fmt.Errorf("pathalgebra: ComposeQueries needs at least one sub-query")
	}
	var plan PathExpr
	for i, q := range subs {
		sub, err := gql.Compile(q)
		if err != nil {
			return nil, fmt.Errorf("pathalgebra: sub-query %d: %w", i+1, err)
		}
		if plan == nil {
			plan = sub
		} else {
			plan = core.Join{L: plan, R: sub}
		}
	}
	plan = core.Restrict{Sem: restrictor, In: plan}
	if outer.Kind == gql.SelNone {
		return plan, nil
	}
	return gql.CompileSelector(outer, plan)
}

// RunOptions configures the one-shot Run helper.
type RunOptions struct {
	// Limits bounds recursive operators (defaults: a result-size safety
	// net only). Walk queries over cyclic graphs need a MaxLen.
	Limits Limits
	// NoOptimize executes the plan exactly as compiled.
	NoOptimize bool
	// DisablePlanner falls back to the statistics-free heuristic
	// optimizer instead of the cost-based planner.
	DisablePlanner bool
	// Parallelism is the number of evaluation worker goroutines; <= 0
	// selects GOMAXPROCS. Results are byte-identical for every value —
	// parallel shards merge in the sequential order and the MaxPaths/
	// MaxWork budgets are shared globally across workers.
	Parallelism int
}

// Run parses, compiles, plans and executes a query in one call. Planning
// goes through the cost-based planner (statistics-driven join order,
// evaluation direction and rewrite gating) unless DisablePlanner is set.
func Run(g *Graph, query string, opts RunOptions) (*PathSet, error) {
	q, err := ParseQuery(query)
	if err != nil {
		return nil, err
	}
	plan, err := CompileQuery(q)
	if err != nil {
		return nil, err
	}
	eng := engine.New(g, engine.Options{
		Limits:         opts.Limits,
		Parallelism:    opts.Parallelism,
		DisablePlanner: opts.DisablePlanner,
	})
	if opts.NoOptimize {
		return eng.EvalPaths(plan)
	}
	return eng.Run(plan)
}

// MustRun is Run panicking on error, for examples and tests.
func MustRun(g *Graph, query string, opts RunOptions) *PathSet {
	s, err := Run(g, query, opts)
	if err != nil {
		panic(fmt.Sprintf("pathalgebra: %v", err))
	}
	return s
}
